package stats

import (
	"fmt"

	"nocemu/internal/state"
)

// SaveState serializes the histogram: shape first (bin width, bin
// count — restore validates both against the built configuration),
// then the sample state.
func (h *Histogram) SaveState(w *state.Writer) {
	w.U64(h.binWidth)
	w.Int(len(h.bins))
	for _, b := range h.bins {
		w.U64(b)
	}
	w.U64(h.overflow)
	w.U64(h.count)
	w.U64(h.sum)
	w.U64(h.min)
	w.U64(h.max)
}

// LoadState restores the histogram. The saved shape must match the
// receiver's (histogram shape is platform configuration, not run
// state); a mismatch means the snapshot was taken on a differently
// configured platform.
func (h *Histogram) LoadState(r *state.Reader) error {
	bw := r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if bw != h.binWidth || n != len(h.bins) {
		return fmt.Errorf("stats: snapshot histogram %d bins of width %d, built %d of width %d",
			n, bw, len(h.bins), h.binWidth)
	}
	for i := range h.bins {
		h.bins[i] = r.U64()
	}
	h.overflow = r.U64()
	h.count = r.U64()
	h.sum = r.U64()
	h.min = r.U64()
	h.max = r.U64()
	return r.Err()
}

// SaveState serializes the running-moments accumulator. Floats are
// written as IEEE-754 bit patterns, so restore reproduces the exact
// values (bit-identical downstream means and variances).
func (w *Welford) SaveState(sw *state.Writer) {
	sw.U64(w.n)
	sw.F64(w.mean)
	sw.F64(w.m2)
	sw.F64(w.min)
	sw.F64(w.max)
}

// LoadState restores the accumulator.
func (w *Welford) LoadState(r *state.Reader) error {
	w.n = r.U64()
	w.mean = r.F64()
	w.m2 = r.F64()
	w.min = r.F64()
	w.max = r.F64()
	return r.Err()
}
