// Package stats provides the statistic primitives behind the paper's
// "statistics reports and analysis": histograms (the image of received
// traffic the stochastic receptors build), running counters, and the
// series the experiment figures are plotted from.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin-width histogram over uint64 samples, the
// software twin of the hardware histogram RAM in a stochastic receptor.
type Histogram struct {
	binWidth uint64
	bins     []uint64
	overflow uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// NewHistogram creates a histogram with numBins bins of the given width;
// samples >= numBins*binWidth land in the overflow counter.
func NewHistogram(binWidth uint64, numBins int) (*Histogram, error) {
	if binWidth == 0 {
		return nil, fmt.Errorf("stats: zero bin width")
	}
	if numBins < 1 {
		return nil, fmt.Errorf("stats: %d bins", numBins)
	}
	return &Histogram{
		binWidth: binWidth,
		bins:     make([]uint64, numBins),
		min:      math.MaxUint64,
	}, nil
}

// MustNewHistogram is NewHistogram for static configurations.
func MustNewHistogram(binWidth uint64, numBins int) *Histogram {
	h, err := NewHistogram(binWidth, numBins)
	if err != nil {
		panic(err)
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := v / h.binWidth
	if i >= uint64(len(h.bins)) {
		h.overflow++
		return
	}
	h.bins[i]++
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Overflow returns the number of samples beyond the last bin.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// NumBins returns the number of regular bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() uint64 { return h.binWidth }

// Bin returns the count in bin i (matching the receptor's indexed
// histogram-readout register).
func (h *Histogram) Bin(i int) uint64 {
	if i < 0 || i >= len(h.bins) {
		return 0
	}
	return h.bins[i]
}

// Quantile returns an upper bound for the q-quantile (0<=q<=1) computed
// from bin boundaries; overflow samples report the overflow boundary.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i, b := range h.bins {
		acc += b
		if acc >= target {
			return uint64(i+1) * h.binWidth
		}
	}
	return uint64(len(h.bins)) * h.binWidth
}

// Reset clears all bins and counters.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.overflow, h.count, h.sum, h.max = 0, 0, 0, 0
	h.min = math.MaxUint64
}

// Render draws the histogram as ASCII art, width columns wide, as the
// paper's monitor displays it on the host PC.
func (h *Histogram) Render(width int) string {
	return RenderBins(h.binWidth, h.bins, h.overflow, width)
}

// RenderBins draws raw histogram bins as ASCII art, width columns wide.
// It is the rendering behind Histogram.Render, split out so a monitor
// that reconstructed the bins over the register bus produces the same
// picture as one holding the Histogram itself.
func RenderBins(binWidth uint64, bins []uint64, overflow uint64, width int) string {
	if width < 1 {
		width = 40
	}
	var peak uint64
	for _, b := range bins {
		if b > peak {
			peak = b
		}
	}
	if overflow > peak {
		peak = overflow
	}
	var sb strings.Builder
	for i, b := range bins {
		bar := 0
		if peak > 0 {
			bar = int(float64(b) / float64(peak) * float64(width))
		}
		fmt.Fprintf(&sb, "[%6d,%6d) %8d |%s\n",
			uint64(i)*binWidth, uint64(i+1)*binWidth, b, strings.Repeat("#", bar))
	}
	if overflow > 0 {
		bar := int(float64(overflow) / float64(peak) * float64(width))
		fmt.Fprintf(&sb, "[%6d,   inf) %8d |%s\n",
			uint64(len(bins))*binWidth, overflow, strings.Repeat("#", bar))
	}
	return sb.String()
}

// Welford accumulates a running mean and variance without storing
// samples (the latency analyzer uses one per flow).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Point is one (x, y) sample of an experiment series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one curve of a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Sorted returns a copy of the series with points ordered by X.
func (s *Series) Sorted() Series {
	out := Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].X < out.Points[j].X })
	return out
}

// YAt returns the Y value for the given X, or ok=false if absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MonotoneNonDecreasing reports whether Y never decreases with X by more
// than tol (used by experiment shape checks).
func (s *Series) MonotoneNonDecreasing(tol float64) bool {
	sorted := s.Sorted()
	for i := 1; i < len(sorted.Points); i++ {
		if sorted.Points[i].Y < sorted.Points[i-1].Y-tol {
			return false
		}
	}
	return true
}
