package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidates(t *testing.T) {
	if _, err := NewHistogram(0, 4); err == nil {
		t.Error("zero bin width accepted")
	}
	if _, err := NewHistogram(4, 0); err == nil {
		t.Error("zero bins accepted")
	}
	h, err := NewHistogram(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBins() != 5 || h.BinWidth() != 10 {
		t.Errorf("bins=%d width=%d", h.NumBins(), h.BinWidth())
	}
}

func TestMustNewHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustNewHistogram(0, 1)
}

func TestHistogramBinning(t *testing.T) {
	h := MustNewHistogram(10, 3)
	for _, v := range []uint64{0, 9, 10, 19, 20, 29, 30, 100} {
		h.Add(v)
	}
	if h.Bin(0) != 2 || h.Bin(1) != 2 || h.Bin(2) != 2 {
		t.Errorf("bins = %d,%d,%d", h.Bin(0), h.Bin(1), h.Bin(2))
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d", h.Overflow())
	}
	if h.Count() != 8 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 100 {
		t.Errorf("min=%d max=%d", h.Min(), h.Max())
	}
	if h.Bin(-1) != 0 || h.Bin(99) != 0 {
		t.Error("out-of-range Bin() not zero")
	}
}

func TestHistogramMeanAndEmpty(t *testing.T) {
	h := MustNewHistogram(1, 4)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram stats nonzero")
	}
	h.Add(2)
	h.Add(4)
	if h.Mean() != 3 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Sum() != 6 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustNewHistogram(10, 10)
	for i := uint64(0); i < 100; i++ {
		h.Add(i)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("median bound = %d, want 50", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("q100 = %d, want 100", q)
	}
	if q := h.Quantile(0.0); q != 10 {
		t.Errorf("q0 = %d, want 10 (first nonempty bin bound)", q)
	}
	empty := MustNewHistogram(1, 2)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile nonzero")
	}
}

func TestHistogramReset(t *testing.T) {
	h := MustNewHistogram(10, 2)
	h.Add(5)
	h.Add(100)
	h.Reset()
	if h.Count() != 0 || h.Overflow() != 0 || h.Bin(0) != 0 || h.Sum() != 0 {
		t.Error("reset incomplete")
	}
	h.Add(3)
	if h.Min() != 3 || h.Max() != 3 {
		t.Error("min/max wrong after reset")
	}
}

func TestHistogramRender(t *testing.T) {
	h := MustNewHistogram(10, 2)
	h.Add(5)
	h.Add(5)
	h.Add(15)
	h.Add(1000)
	out := h.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("peak bin not full width: %q", lines[0])
	}
	if !strings.Contains(lines[2], "inf") {
		t.Errorf("no overflow row: %q", lines[2])
	}
	if empty := MustNewHistogram(1, 1).Render(0); !strings.Contains(empty, "[") {
		t.Error("empty render malformed")
	}
}

// Property: histogram count equals samples added, and sum of bins plus
// overflow equals count.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		h := MustNewHistogram(7, 9)
		for _, s := range samples {
			h.Add(uint64(s))
		}
		var total uint64
		for i := 0; i < h.NumBins(); i++ {
			total += h.Bin(i)
		}
		total += h.Overflow()
		return total == uint64(len(samples)) && h.Count() == uint64(len(samples))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Error("empty accumulator nonzero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", w.Mean())
	}
	if math.Abs(w.Var()-4) > 1e-12 {
		t.Errorf("var = %v", w.Var())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("std = %v", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min=%v max=%v", w.Min(), w.Max())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Error("reset incomplete")
	}
}

// Property: Welford mean/var match the two-pass formulas.
func TestWelfordMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, r := range raw {
			d := float64(r) - mean
			m2 += d * d
		}
		variance := m2 / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "curve"
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	sorted := s.Sorted()
	if sorted.Points[0].X != 1 || sorted.Points[2].X != 3 {
		t.Errorf("sorted = %v", sorted.Points)
	}
	// Original untouched.
	if s.Points[0].X != 3 {
		t.Error("Sorted mutated the receiver")
	}
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt(99) found")
	}
	if !s.MonotoneNonDecreasing(0) {
		t.Error("increasing series reported non-monotone")
	}
	s.Add(4, 5)
	if s.MonotoneNonDecreasing(0) {
		t.Error("decreasing series reported monotone")
	}
	if !s.MonotoneNonDecreasing(100) {
		t.Error("tolerance ignored")
	}
}
