package switchfab

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/probe"
)

// Arena is the dense switch store of a platform: every switch lives by
// value in one contiguous slice (each with its own dense input-buffer
// block), and the whole population registers with the engine as a
// single component (engine.Arena). The per-cycle walk calls the
// concrete Tick/Commit directly over adjacent memory — no interface
// dispatch, no pointer chasing between neighbouring switches — which is
// what keeps the route/arbitrate loop cache-resident at 1k-node scale.
// Config.SeparateWires restores one engine component per switch.
//
// On a gated sequential platform the arena also gates each switch
// internally, mirroring the engine's own component gating: an idle
// switch (empty buffers, nothing on its input wires) is parked with a
// per-element watermark and is paid its missed cycles (cycle counters,
// buffer occupancy denominators) when an input wire's Send hook re-arms
// it or when the kernel settles. The arena reports quiet to the engine
// exactly when every element is parked.
type Arena struct {
	name string
	sws  []Switch

	// Internal gating state (gated sequential platforms only).
	gated   bool
	cycle   func() uint64 // engine cycle, for arm-time catch-up
	active  []bool
	act     []int    // indices of active switches, unordered
	park    []uint64 // first cycle element i has not executed
	nextTry []uint64 // park-scan backoff, as in the engine's scheduler
}

// parkRetry mirrors the engine's park-scan backoff: a busy switch is
// re-examined for parking every parkRetry-th cycle instead of every
// cycle. Parking is transparent, so the backoff never changes results.
const parkRetry = 8

// NewArena returns an empty switch arena with fixed capacity. The
// capacity is exact: the platform knows its switch count at build time,
// and a fixed backing array keeps the *Switch handles returned by New
// stable.
func NewArena(name string, n int) *Arena {
	return &Arena{name: name, sws: make([]Switch, 0, n)}
}

// New appends a switch to the arena, initializing it in place (the
// arbitration request closure must capture the element's final resting
// address), and returns its handle. The handle stays valid for the
// arena's lifetime. Exceeding the declared capacity is a construction
// bug and panics (growth would move every previously handed-out switch).
func (a *Arena) New(cfg Config) (*Switch, error) {
	if len(a.sws) == cap(a.sws) {
		panic(fmt.Sprintf("switchfab: arena %s capacity %d exceeded", a.name, cap(a.sws)))
	}
	a.sws = append(a.sws, Switch{})
	s := &a.sws[len(a.sws)-1]
	if err := initSwitch(s, cfg); err != nil {
		a.sws = a.sws[:len(a.sws)-1]
		return nil, err
	}
	return s, nil
}

// Num returns the number of switches created so far; the next New call
// returns index Num().
func (a *Arena) Num() int { return len(a.sws) }

// At returns the switch at arena index i.
func (a *Arena) At(i int) *Switch { return &a.sws[i] }

// ComponentName implements engine.Component.
func (a *Arena) ComponentName() string { return a.name }

// Tick implements engine.Component: evaluate every switch (or, gated,
// every active switch).
func (a *Arena) Tick(cycle uint64) {
	if !a.gated {
		for i := range a.sws {
			a.sws[i].Tick(cycle)
		}
		return
	}
	// Growing bound: a switch ticked here may stage a flit onto a parked
	// neighbour's input wire, whose Send hook appends the neighbour to
	// act mid-walk; the new entry is then ticked in this same cycle —
	// the arena-internal analogue of the engine's armed-list catch-up.
	for n := 0; n < len(a.act); n++ {
		a.sws[a.act[n]].Tick(cycle)
	}
}

// Commit implements engine.Component. Gated, it doubles as the park
// scan: each active switch commits and, subject to the backoff, is
// parked if quiet. The quiet predicate is safe here — mid-commit,
// before the wires commit — because Switch.NextWake checks input wires
// with PendingFlit, which sees staged flits, and no component stages
// flits during the commit phase.
func (a *Arena) Commit(cycle uint64) {
	if !a.gated {
		for i := range a.sws {
			a.sws[i].Commit(cycle)
		}
		return
	}
	keep := a.act[:0]
	for _, i := range a.act {
		s := &a.sws[i]
		s.Commit(cycle)
		if cycle < a.nextTry[i] {
			keep = append(keep, i)
			continue
		}
		if _, quiet := s.NextWake(cycle); !quiet {
			a.nextTry[i] = cycle + parkRetry
			keep = append(keep, i)
			continue
		}
		a.active[i] = false
		a.park[i] = cycle + 1
	}
	a.act = keep
}

// Len implements engine.Arena.
func (a *Arena) Len() int { return len(a.sws) }

// TickRange implements engine.Arena: tick switches [lo, hi). Only the
// parallel kernel calls it; internal gating is a sequential-kernel mode.
func (a *Arena) TickRange(lo, hi int, cycle uint64) {
	for i := lo; i < hi; i++ {
		a.sws[i].Tick(cycle)
	}
}

// CommitRange implements engine.Arena: commit switches [lo, hi).
func (a *Arena) CommitRange(lo, hi int, cycle uint64) {
	for i := lo; i < hi; i++ {
		a.sws[i].Commit(cycle)
	}
}

// EnableGating switches the arena to per-switch scheduling; cycle
// supplies the engine's current cycle for arm-time skip accounting.
// Every switch starts active, exactly like freshly registered engine
// components.
func (a *Arena) EnableGating(cycle func() uint64) {
	a.gated = true
	a.cycle = cycle
	n := len(a.sws)
	a.active = make([]bool, n)
	a.act = make([]int, n)
	a.park = make([]uint64, n)
	a.nextTry = make([]uint64, n)
	for i := range a.sws {
		a.active[i] = true
		a.act[i] = i
	}
}

// Arm re-activates switch i (called from its input wires' Send hooks),
// paying the cycles it skipped while parked. No-op when the switch is
// already active or the arena is ungated.
func (a *Arena) Arm(i int) {
	if !a.gated || a.active[i] {
		return
	}
	a.active[i] = true
	c := a.cycle()
	if c > a.park[i] {
		a.sws[i].SkipIdle(a.park[i], c-a.park[i])
	}
	a.park[i] = c
	a.nextTry[i] = 0
	a.act = append(a.act, i)
}

// NextWake implements engine.Quiescable: the arena is quiet when every
// switch is (gated: every element parked; ungated: direct scan). Input
// wire Send hooks arm both the element and the arena component, so a
// quiet arena never misses traffic.
func (a *Arena) NextWake(cycle uint64) (uint64, bool) {
	if a.gated {
		return NeverWake, len(a.act) == 0
	}
	for i := range a.sws {
		if _, quiet := a.sws[i].NextWake(cycle); !quiet {
			return 0, false
		}
	}
	return NeverWake, true
}

// SkipIdle implements engine.Quiescable. With internal gating the
// per-element park watermarks already account for skipped cycles (paid
// on arm or Settle), so the arena-level call pays nothing; ungated
// (global fast-forward on a parallel kernel) it pays every element.
func (a *Arena) SkipIdle(from, n uint64) {
	if a.gated {
		return
	}
	for i := range a.sws {
		a.sws[i].SkipIdle(from, n)
	}
}

// Settle implements engine.Settler: bring every internally parked
// switch's counters up to date, so observers between runs see exactly
// the naive schedule's statistics.
func (a *Arena) Settle(cycle uint64) {
	if !a.gated {
		return
	}
	for i := range a.sws {
		if !a.active[i] && cycle > a.park[i] {
			a.sws[i].SkipIdle(a.park[i], cycle-a.park[i])
			a.park[i] = cycle
		}
	}
}

// Rewind implements engine.Settler: after Engine.Reset the park
// watermarks must restart from cycle zero (the kernel settled first, so
// no debt is outstanding). Parked switches stay parked; their input
// hooks re-arm them.
func (a *Arena) Rewind() {
	for i := range a.park {
		a.park[i] = 0
	}
}

// Drain empties every switch's input buffers through release and clears
// wormhole locks (end-of-run reclamation).
func (a *Arena) Drain(release func(*flit.Flit)) {
	for i := range a.sws {
		a.sws[i].Drain(release)
	}
}

// SetProbe attaches the tracing probe to every switch.
func (a *Arena) SetProbe(p *probe.Probe) {
	for i := range a.sws {
		a.sws[i].SetProbe(p)
	}
}

// NeverWake mirrors engine.NeverWake without importing the engine
// package (switchfab is below engine in the dependency order).
const NeverWake = ^uint64(0)
