// Snapshot support for the switch fabric (DESIGN.md §13).
//
// A switch section holds the full routing pipeline state: the random
// register, the per-input FIFOs (with their queued flit images), the
// per-output credit counters and wormhole locks, the per-input route
// grants, the arbiter priority state, and the statistics. The scratch
// granted flags are per-cycle and always false between runs.
//
// Like the wire arena, the switch arena's internal gating state is
// derivable and never serialized: restore re-parks every switch whose
// quiet predicate holds at the restored cycle and re-activates the
// rest, with park watermarks at the snapshot boundary (where the
// kernel settled all skip debt).
package switchfab

import (
	"fmt"

	"nocemu/internal/state"
)

// SaveState serializes one switch.
func (s *Switch) SaveState(w *state.Writer) {
	s.lfsr.SaveState(w)
	w.Int(s.cfg.NumIn)
	w.Int(s.cfg.NumOut)
	for i := range s.inBufs {
		s.inBufs[i].SaveState(w)
	}
	for i := range s.inRoute {
		w.Int(s.inRoute[i])
	}
	for o := range s.credits {
		w.Int(s.credits[o])
		w.Int(s.lock[o])
		s.arbiters[o].SaveState(w)
	}
	w.U64(s.stats.FlitsRouted)
	w.U64(s.stats.PacketsRouted)
	w.U64(s.stats.BlockedCycles)
	w.U64(s.stats.Cycles)
}

// LoadState restores one switch.
func (s *Switch) LoadState(r *state.Reader) error {
	if err := s.lfsr.LoadState(r); err != nil {
		return fmt.Errorf("switchfab %s: %w", s.cfg.Name, err)
	}
	nIn, nOut := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nIn != s.cfg.NumIn || nOut != s.cfg.NumOut {
		return fmt.Errorf("switchfab %s: snapshot is %dx%d, built %dx%d",
			s.cfg.Name, nIn, nOut, s.cfg.NumIn, s.cfg.NumOut)
	}
	for i := range s.inBufs {
		if err := s.inBufs[i].LoadState(r); err != nil {
			return err
		}
	}
	for i := range s.inRoute {
		rt := r.Int()
		if r.Err() == nil && (rt < -1 || rt >= s.cfg.NumOut) {
			return fmt.Errorf("switchfab %s: snapshot routes input %d to port %d", s.cfg.Name, i, rt)
		}
		s.inRoute[i] = rt
		s.granted[i] = false
	}
	for o := range s.credits {
		s.credits[o] = r.Int()
		lk := r.Int()
		if r.Err() == nil && (lk < -1 || lk >= s.cfg.NumIn) {
			return fmt.Errorf("switchfab %s: snapshot locks output %d to input %d", s.cfg.Name, o, lk)
		}
		s.lock[o] = lk
		if err := s.arbiters[o].LoadState(r); err != nil {
			return fmt.Errorf("switchfab %s: output %d arbiter: %w", s.cfg.Name, o, err)
		}
	}
	s.stats.FlitsRouted = r.U64()
	s.stats.PacketsRouted = r.U64()
	s.stats.BlockedCycles = r.U64()
	s.stats.Cycles = r.U64()
	return r.Err()
}

// SaveState serializes the switch arena: the element count (validated
// on restore), then every switch in index order. Gating state is
// derivable (see the file comment) and not written.
func (a *Arena) SaveState(w *state.Writer) {
	w.Int(len(a.sws))
	for i := range a.sws {
		a.sws[i].SaveState(w)
	}
}

// LoadState restores every switch and rebuilds the internal gating
// view at the restored cycle.
func (a *Arena) LoadState(r *state.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(a.sws) {
		return fmt.Errorf("switchfab: snapshot arena %s has %d switches, built %d", a.name, n, len(a.sws))
	}
	for i := range a.sws {
		if err := a.sws[i].LoadState(r); err != nil {
			return err
		}
	}
	if a.gated {
		cycle := a.cycle()
		a.act = a.act[:0]
		for i := range a.sws {
			_, quiet := a.sws[i].NextWake(cycle)
			a.active[i] = !quiet
			a.park[i] = cycle
			a.nextTry[i] = 0
			if !quiet {
				a.act = append(a.act, i)
			}
		}
	}
	return r.Err()
}
