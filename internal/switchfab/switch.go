// Package switchfab implements the emulated NoC switch.
//
// The paper's platform emulates "any NoC packet-switching
// intercommunication scheme" with a network of parameterizable
// switches; the parameters it studies are the number of inputs, the
// number of outputs, and the size of the buffers. This switch is
// input-buffered and wormhole-switched: a head flit arbitrates for an
// output port, the port stays locked to that input until the tail flit
// passes, and credit-based flow control guarantees buffers never
// overflow. Each output port has its own arbiter; route candidates come
// from a routing table and are narrowed to one port by a selection
// policy (first / packet-modulo / random / adaptive).
package switchfab

import (
	"fmt"

	"nocemu/internal/arb"
	"nocemu/internal/buffer"
	"nocemu/internal/flit"
	"nocemu/internal/link"
	"nocemu/internal/probe"
	"nocemu/internal/rng"
	"nocemu/internal/routing"
	"nocemu/internal/topology"
)

// Config parameterizes one switch instance.
type Config struct {
	// Name is the engine component name.
	Name string
	// Node is this switch's identifier in the topology.
	Node topology.NodeID
	// NumIn and NumOut are the port counts.
	NumIn, NumOut int
	// BufDepth is the per-input FIFO depth in flits.
	BufDepth int
	// Arb selects the output-port arbitration policy.
	Arb arb.Policy
	// Select picks among multiple route candidates.
	Select routing.Policy
	// Table is the routing table shared across the platform.
	Table *routing.Table
	// Seed seeds the switch-local LFSR (used by the Random policy).
	Seed uint32
}

// Stats is a snapshot of a switch's activity counters.
type Stats struct {
	// FlitsRouted counts flits forwarded through any output.
	FlitsRouted uint64
	// PacketsRouted counts tail flits forwarded (completed packets).
	PacketsRouted uint64
	// BlockedCycles counts input-head stalls: cycles in which a buffered
	// head-of-queue flit could not advance (lost arbitration or no
	// downstream credit). This is the congestion signal of the paper's
	// congestion counters.
	BlockedCycles uint64
	// Cycles counts committed cycles.
	Cycles uint64
}

// CongestionRate returns the fraction of flit-forwarding opportunities
// lost to blocking: blocked / (blocked + routed). Zero when idle.
func (s Stats) CongestionRate() float64 {
	den := s.BlockedCycles + s.FlitsRouted
	if den == 0 {
		return 0
	}
	return float64(s.BlockedCycles) / float64(den)
}

// Switch is one emulated NoC switch. Wire it with ConnectInput /
// ConnectOutput, then register it (and its links) with the engine —
// individually, or as part of an Arena (arena.go).
type Switch struct {
	cfg  Config
	lfsr *rng.LFSR

	inBufs    []buffer.FIFO // dense: one cache-linear block per switch
	inLinks   []*link.Link
	creditOut []*link.CreditLink // per input: returns credits upstream

	outLinks  []*link.Link
	creditIn  []*link.CreditLink // per output: credits from downstream
	credits   []int              // per output: available credits
	lock      []int              // per output: input holding the wormhole lock, or -1
	arbiters  []arb.Arbiter      // per output
	inRoute   []int              // per input: chosen output for the packet in flight, or -1
	granted   []bool             // per input: forwarded this cycle (reused scratch)
	reqOut    int                // output being arbitrated (parameter of reqFn)
	reqFn     arb.Requests       // pre-bound request predicate (no per-cycle closure)
	wired     int
	wiredOuts int

	stats Stats

	// probe records route events for forwarded flits; nil when tracing
	// is off. The input buffers share it (they commit from this switch's
	// Commit, preserving the single-producer discipline).
	probe *probe.Probe
}

// New builds a switch from its configuration.
func New(cfg Config) (*Switch, error) {
	s := &Switch{}
	if err := initSwitch(s, cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// initSwitch initializes a switch in place. Arena construction needs
// this form: elements live as values in the arena's backing slice, and
// the reqFn closure below must capture the final resting address (a
// copied Switch value would arbitrate against the original's state).
func initSwitch(s *Switch, cfg Config) error {
	if cfg.Name == "" {
		return fmt.Errorf("switchfab: empty name")
	}
	if cfg.NumIn < 1 || cfg.NumOut < 1 {
		return fmt.Errorf("switchfab %s: %d inputs, %d outputs", cfg.Name, cfg.NumIn, cfg.NumOut)
	}
	if cfg.BufDepth < 1 {
		return fmt.Errorf("switchfab %s: buffer depth %d", cfg.Name, cfg.BufDepth)
	}
	if cfg.Table == nil {
		return fmt.Errorf("switchfab %s: nil routing table", cfg.Name)
	}
	if !routing.ValidPolicy(cfg.Select) {
		return fmt.Errorf("switchfab %s: bad selection policy %q", cfg.Name, cfg.Select)
	}
	*s = Switch{
		cfg:       cfg,
		lfsr:      rng.New(cfg.Seed),
		inBufs:    make([]buffer.FIFO, cfg.NumIn),
		inLinks:   make([]*link.Link, cfg.NumIn),
		creditOut: make([]*link.CreditLink, cfg.NumIn),
		outLinks:  make([]*link.Link, cfg.NumOut),
		creditIn:  make([]*link.CreditLink, cfg.NumOut),
		credits:   make([]int, cfg.NumOut),
		lock:      make([]int, cfg.NumOut),
		arbiters:  make([]arb.Arbiter, cfg.NumOut),
		inRoute:   make([]int, cfg.NumIn),
		granted:   make([]bool, cfg.NumIn),
	}
	s.reqFn = func(i int) bool {
		return !s.granted[i] && s.inRoute[i] == s.reqOut && s.inBufs[i].Peek() != nil
	}
	for i := 0; i < cfg.NumIn; i++ {
		buffer.MustInit(&s.inBufs[i], fmt.Sprintf("%s/in%d", cfg.Name, i), cfg.BufDepth)
		s.inRoute[i] = -1
	}
	for o := 0; o < cfg.NumOut; o++ {
		a, err := arb.New(cfg.Arb, cfg.NumIn)
		if err != nil {
			return fmt.Errorf("switchfab %s: %w", cfg.Name, err)
		}
		s.arbiters[o] = a
		s.lock[o] = -1
	}
	return nil
}

// ComponentName implements engine.Component.
func (s *Switch) ComponentName() string { return s.cfg.Name }

// Node returns the switch's topology identifier.
func (s *Switch) Node() topology.NodeID { return s.cfg.Node }

// BufDepth returns the input buffer depth; the upstream sender must use
// it as its initial credit count.
func (s *Switch) BufDepth() int { return s.cfg.BufDepth }

// ConnectInput wires input port i: flits arrive on in, credits are
// returned on creditBack (nil for a port without flow-control return,
// which is invalid for NoC ports and only used in tests).
func (s *Switch) ConnectInput(i int, in *link.Link, creditBack *link.CreditLink) error {
	if i < 0 || i >= s.cfg.NumIn {
		return fmt.Errorf("switchfab %s: input %d out of range", s.cfg.Name, i)
	}
	if s.inLinks[i] != nil {
		return fmt.Errorf("switchfab %s: input %d already wired", s.cfg.Name, i)
	}
	if in == nil || creditBack == nil {
		return fmt.Errorf("switchfab %s: input %d nil wiring", s.cfg.Name, i)
	}
	s.inLinks[i] = in
	s.creditOut[i] = creditBack
	s.wired++
	return nil
}

// ConnectOutput wires output port o: flits leave on out, credits arrive
// on creditIn, and initialCredits must equal the downstream input
// buffer depth.
func (s *Switch) ConnectOutput(o int, out *link.Link, creditIn *link.CreditLink, initialCredits int) error {
	if o < 0 || o >= s.cfg.NumOut {
		return fmt.Errorf("switchfab %s: output %d out of range", s.cfg.Name, o)
	}
	if s.outLinks[o] != nil {
		return fmt.Errorf("switchfab %s: output %d already wired", s.cfg.Name, o)
	}
	if out == nil || creditIn == nil {
		return fmt.Errorf("switchfab %s: output %d nil wiring", s.cfg.Name, o)
	}
	if initialCredits < 1 {
		return fmt.Errorf("switchfab %s: output %d with %d credits", s.cfg.Name, o, initialCredits)
	}
	s.outLinks[o] = out
	s.creditIn[o] = creditIn
	s.credits[o] = initialCredits
	s.wiredOuts++
	return nil
}

// CheckWired verifies every port is connected; the platform builder
// calls it before the first cycle.
func (s *Switch) CheckWired() error {
	if s.wired != s.cfg.NumIn {
		return fmt.Errorf("switchfab %s: %d of %d inputs wired", s.cfg.Name, s.wired, s.cfg.NumIn)
	}
	if s.wiredOuts != s.cfg.NumOut {
		return fmt.Errorf("switchfab %s: %d of %d outputs wired", s.cfg.Name, s.wiredOuts, s.cfg.NumOut)
	}
	return nil
}

// selectPort narrows route candidates to one output according to the
// configured policy. Selection happens once per packet, when its head
// flit reaches the front of an input buffer (route-computation stage).
func (s *Switch) selectPort(candidates []int, f *flit.Flit) int {
	if len(candidates) == 1 {
		return candidates[0]
	}
	switch s.cfg.Select {
	case routing.PacketModulo:
		return candidates[int(f.Packet.Seq())%len(candidates)]
	case routing.Random:
		return candidates[s.lfsr.Intn(len(candidates))]
	case routing.Adaptive:
		best := candidates[0]
		for _, c := range candidates[1:] {
			if s.credits[c] > s.credits[best] {
				best = c
			}
		}
		return best
	default: // routing.First
		return candidates[0]
	}
}

// Tick implements engine.Component: accept arrivals, collect credits,
// compute routes, arbitrate outputs and forward flits.
func (s *Switch) Tick(cycle uint64) {
	// Collect returned credits first so this cycle's arbitration sees
	// them (they were committed last cycle).
	for o := range s.creditIn {
		s.credits[o] += int(s.creditIn[o].Take())
	}

	// Accept arriving flits into input buffers. Credit flow control
	// guarantees space; a push failure indicates a protocol bug and is
	// surfaced via panic in this internal invariant.
	for i, in := range s.inLinks {
		if f := in.Take(); f != nil {
			if err := s.inBufs[i].Push(f); err != nil {
				panic(fmt.Sprintf("switchfab %s: %v", s.cfg.Name, err))
			}
		}
	}

	// Route computation for heads newly at the front of their buffers.
	for i := range s.inBufs {
		f := s.inBufs[i].Peek()
		if f == nil {
			continue
		}
		if s.inRoute[i] == -1 {
			if !f.Kind.IsHead() {
				panic(fmt.Sprintf("switchfab %s: input %d has unrouted %s flit at head", s.cfg.Name, i, f.Kind))
			}
			candidates, err := s.cfg.Table.Lookup(s.cfg.Node, f.Dst)
			if err != nil {
				panic(fmt.Sprintf("switchfab %s: %v", s.cfg.Name, err))
			}
			s.inRoute[i] = s.selectPort(candidates, f)
		}
	}

	// Per-output arbitration and forwarding.
	granted := s.granted
	for i := range granted {
		granted[i] = false
	}
	for o := range s.outLinks {
		var winner int
		switch {
		case s.lock[o] >= 0:
			winner = s.lock[o]
			if s.inBufs[winner].Peek() == nil {
				continue // next flit of the locked packet not here yet
			}
		default:
			s.reqOut = o
			w, ok := s.arbiters[o].Grant(s.reqFn)
			if !ok {
				continue
			}
			winner = w
		}
		if s.credits[o] == 0 || s.outLinks[o].Busy() {
			continue // counted as blocked in the sweep below
		}
		f := s.inBufs[winner].Pop()
		if f == nil {
			panic(fmt.Sprintf("switchfab %s: pop failed on granted input %d", s.cfg.Name, winner))
		}
		if err := s.outLinks[o].Send(f); err != nil {
			panic(fmt.Sprintf("switchfab %s: %v", s.cfg.Name, err))
		}
		s.credits[o]--
		s.creditOut[winner].Send(1)
		granted[winner] = true
		s.stats.FlitsRouted++
		s.probe.FlitRoute(cycle, uint64(f.Packet), uint16(f.Src), uint16(f.Dst), f.Index, uint16(f.VC), uint32(winner), uint32(o))
		if f.Kind.IsTail() {
			s.stats.PacketsRouted++
			s.lock[o] = -1
			s.inRoute[winner] = -1
		} else {
			s.lock[o] = winner
		}
	}

	// Every input whose head flit existed this cycle but did not move is
	// blocked: it lost arbitration, found no downstream credit, or sits
	// behind another packet's wormhole lock. Each stalled head counts
	// exactly once per cycle.
	for i := range s.inBufs {
		q := &s.inBufs[i]
		if !granted[i] && q.Peek() != nil && s.inRoute[i] >= 0 {
			q.MarkBlocked()
			s.stats.BlockedCycles++
		}
	}
}

// Commit implements engine.Component.
func (s *Switch) Commit(cycle uint64) {
	for i := range s.inBufs {
		s.inBufs[i].Commit(cycle)
	}
	s.stats.Cycles++
}

// NextWake implements engine.Quiescable. The switch is quiet when all
// input buffers are empty and no flit is committed on an input wire:
// with no heads there is nothing to route, arbitrate, forward or mark
// blocked, and pending credits accumulate losslessly on the wires until
// the next evaluated cycle. Wormhole locks and per-input routes may
// persist while quiet; they are frozen state, revisited when an input
// arms the switch.
func (s *Switch) NextWake(cycle uint64) (uint64, bool) {
	for i := range s.inBufs {
		if !s.inBufs[i].Empty() {
			return 0, false
		}
	}
	// PendingFlit rather than Peek: the arena's park scan runs during
	// the commit phase, before the wires commit, where a flit staged
	// this cycle is visible only as pending state. After the wires
	// commit (the engine-level scan position) the two are identical.
	for _, in := range s.inLinks {
		if in.PendingFlit() {
			return 0, false
		}
	}
	return ^uint64(0), true
}

// SkipIdle implements engine.Quiescable: each skipped cycle would have
// committed empty buffers and counted one switch cycle.
func (s *Switch) SkipIdle(from, n uint64) {
	s.stats.Cycles += n
	for i := range s.inBufs {
		s.inBufs[i].SkipIdle(n)
	}
}

// Drain empties every input buffer through release and clears the
// wormhole locks and per-input routes (end-of-run reclamation: a
// drained packet's tail never arrives, so the locks must be force-
// released). Credits and statistics are untouched.
func (s *Switch) Drain(release func(*flit.Flit)) {
	for i := range s.inBufs {
		s.inBufs[i].Drain(release)
		s.inRoute[i] = -1
		s.granted[i] = false
	}
	for o := range s.lock {
		s.lock[o] = -1
	}
}

// SetProbe attaches the tracing probe (nil disables tracing) and shares
// it with the input buffers.
func (s *Switch) SetProbe(p *probe.Probe) {
	s.probe = p
	for i := range s.inBufs {
		s.inBufs[i].SetProbe(p)
	}
}

// Stats returns the activity counters.
func (s *Switch) Stats() Stats { return s.stats }

// BufferedFlits returns the committed occupancy summed over the input
// buffers — the trace collector's boundary-sample source. Unlike the
// mean-occupancy statistic it carries no skipped-cycle debt, so it is
// exact whether or not the switch is parked.
func (s *Switch) BufferedFlits() int {
	n := 0
	for i := range s.inBufs {
		n += s.inBufs[i].Len()
	}
	return n
}

// BufferStats returns the per-input buffer statistics.
func (s *Switch) BufferStats() []buffer.Stats {
	out := make([]buffer.Stats, len(s.inBufs))
	for i := range s.inBufs {
		out[i] = s.inBufs[i].Stats()
	}
	return out
}

// ResetStats clears the activity counters (and buffer counters) without
// disturbing in-flight traffic, so measurements can exclude warm-up.
func (s *Switch) ResetStats() {
	s.stats = Stats{}
	for i := range s.inBufs {
		s.inBufs[i].ResetStats()
	}
}
