package switchfab

import (
	"testing"

	"nocemu/internal/arb"
	"nocemu/internal/engine"
	"nocemu/internal/flit"
	"nocemu/internal/link"
	"nocemu/internal/nic"
	"nocemu/internal/routing"
	"nocemu/internal/topology"
)

// plannedPacket is one packet a test source wants to send.
type plannedPacket struct {
	dst flit.EndpointID
	len uint16
}

// testSrc drives an injector from a fixed plan, one offer attempt per
// cycle.
type testSrc struct {
	name string
	inj  *nic.Injector
	plan []plannedPacket
	i    int
}

func (s *testSrc) ComponentName() string { return s.name }
func (s *testSrc) Tick(c uint64) {
	if s.i < len(s.plan) && s.inj.CanAccept(s.plan[s.i].len) {
		p := s.plan[s.i]
		if _, err := s.inj.Offer(p.dst, p.len, 0, c); err != nil {
			panic(err)
		}
		s.i++
	}
	s.inj.Pump(c)
}
func (s *testSrc) Commit(c uint64) {}
func (s *testSrc) Done() bool      { return s.i >= len(s.plan) && s.inj.Drained() }

// testDst collects packets and the flit arrival order from an ejector.
type testDst struct {
	name   string
	ej     *nic.Ejector
	want   int
	got    []*flit.Packet
	order  []flit.PacketID // owning packet of each flit, in arrival order
	cycles []uint64        // receive cycle per packet
}

func (d *testDst) ComponentName() string { return d.name }
func (d *testDst) Tick(c uint64) {
	d.ej.Pump(c,
		func(f *flit.Flit) { d.order = append(d.order, f.Packet) },
		func(p *flit.Packet, last *flit.Flit) {
			cp := *p // the callback packet is only valid during the call
			d.got = append(d.got, &cp)
			d.cycles = append(d.cycles, c)
		})
}
func (d *testDst) Commit(c uint64) { d.ej.Commit(c) }
func (d *testDst) Done() bool      { return len(d.got) >= d.want }

func wire(t *testing.T, eng *engine.Engine, name string) (*link.Link, *link.CreditLink) {
	t.Helper()
	l := link.NewLink(name)
	c := link.NewCreditLink(name + ".cr")
	eng.MustRegister(l)
	eng.MustRegister(c)
	return l, c
}

func defaultCfg(name string, node topology.NodeID, in, out int, table *routing.Table) Config {
	return Config{
		Name: name, Node: node, NumIn: in, NumOut: out,
		BufDepth: 4, Arb: arb.RoundRobin, Select: routing.First,
		Table: table, Seed: 1,
	}
}

func TestNewValidates(t *testing.T) {
	tb := routing.NewTable(1)
	cases := []Config{
		{Name: "", NumIn: 1, NumOut: 1, BufDepth: 1, Arb: arb.RoundRobin, Select: routing.First, Table: tb},
		{Name: "s", NumIn: 0, NumOut: 1, BufDepth: 1, Arb: arb.RoundRobin, Select: routing.First, Table: tb},
		{Name: "s", NumIn: 1, NumOut: 0, BufDepth: 1, Arb: arb.RoundRobin, Select: routing.First, Table: tb},
		{Name: "s", NumIn: 1, NumOut: 1, BufDepth: 0, Arb: arb.RoundRobin, Select: routing.First, Table: tb},
		{Name: "s", NumIn: 1, NumOut: 1, BufDepth: 1, Arb: arb.RoundRobin, Select: routing.First, Table: nil},
		{Name: "s", NumIn: 1, NumOut: 1, BufDepth: 1, Arb: arb.RoundRobin, Select: routing.Policy("x"), Table: tb},
		{Name: "s", NumIn: 1, NumOut: 1, BufDepth: 1, Arb: arb.Policy("x"), Select: routing.First, Table: tb},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(defaultCfg("ok", 0, 2, 2, tb)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestWiringErrors(t *testing.T) {
	tb := routing.NewTable(1)
	s, err := New(defaultCfg("s", 0, 1, 1, tb))
	if err != nil {
		t.Fatal(err)
	}
	l := link.NewLink("l")
	c := link.NewCreditLink("c")
	if err := s.ConnectInput(5, l, c); err == nil {
		t.Error("out-of-range input accepted")
	}
	if err := s.ConnectInput(0, nil, c); err == nil {
		t.Error("nil link accepted")
	}
	if err := s.ConnectInput(0, l, nil); err == nil {
		t.Error("nil credit accepted")
	}
	if err := s.CheckWired(); err == nil {
		t.Error("unwired switch passed CheckWired")
	}
	if err := s.ConnectInput(0, l, c); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectInput(0, l, c); err == nil {
		t.Error("double input wiring accepted")
	}
	ol := link.NewLink("ol")
	oc := link.NewCreditLink("oc")
	if err := s.ConnectOutput(3, ol, oc, 2); err == nil {
		t.Error("out-of-range output accepted")
	}
	if err := s.ConnectOutput(0, ol, oc, 0); err == nil {
		t.Error("0 credits accepted")
	}
	if err := s.ConnectOutput(0, ol, oc, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectOutput(0, ol, oc, 2); err == nil {
		t.Error("double output wiring accepted")
	}
	if err := s.CheckWired(); err != nil {
		t.Errorf("fully wired switch failed CheckWired: %v", err)
	}
}

// buildSingle wires inj -> switch -> ej on a 1x1 switch and returns the
// pieces; dst endpoint is 100.
func buildSingle(t *testing.T, plan []plannedPacket) (*engine.Engine, *testSrc, *testDst, *Switch) {
	t.Helper()
	eng := engine.New()
	tb := routing.NewTable(1)
	if err := tb.Set(0, 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	sw, err := New(defaultCfg("sw0", 0, 1, 1, tb))
	if err != nil {
		t.Fatal(err)
	}
	injL, injCr := wire(t, eng, "inj")
	outL, outCr := wire(t, eng, "out")
	if err := sw.ConnectInput(0, injL, injCr); err != nil {
		t.Fatal(err)
	}
	inj, err := nic.NewInjector(1, injL, injCr, sw.BufDepth(), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	ej, err := nic.NewEjector(100, outL, outCr, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.ConnectOutput(0, outL, outCr, ej.Depth()); err != nil {
		t.Fatal(err)
	}
	if err := sw.CheckWired(); err != nil {
		t.Fatal(err)
	}
	src := &testSrc{name: "src", inj: inj, plan: plan}
	dst := &testDst{name: "dst", ej: ej, want: len(plan)}
	eng.MustRegister(src)
	eng.MustRegister(sw)
	eng.MustRegister(dst)
	return eng, src, dst, sw
}

func TestSingleSwitchDelivery(t *testing.T) {
	plan := []plannedPacket{{100, 1}, {100, 4}, {100, 2}, {100, 8}}
	eng, _, dst, sw := buildSingle(t, plan)
	_, stopped := eng.RunUntil(1000)
	if !stopped {
		t.Fatal("did not finish")
	}
	if len(dst.got) != 4 {
		t.Fatalf("received %d packets", len(dst.got))
	}
	for i, p := range dst.got {
		if p.ID.Seq() != uint64(i) {
			t.Errorf("packet %d out of order: seq %d", i, p.ID.Seq())
		}
		if p.Len != plan[i].len {
			t.Errorf("packet %d len = %d, want %d", i, p.Len, plan[i].len)
		}
	}
	st := sw.Stats()
	if st.FlitsRouted != 15 {
		t.Errorf("flits routed = %d, want 15", st.FlitsRouted)
	}
	if st.PacketsRouted != 4 {
		t.Errorf("packets routed = %d", st.PacketsRouted)
	}
}

func TestSingleSwitchFullThroughput(t *testing.T) {
	// 50 single-flit packets through buffers of depth 4 (> credit round
	// trip): the pipe must sustain one flit per cycle after fill.
	plan := make([]plannedPacket, 50)
	for i := range plan {
		plan[i] = plannedPacket{100, 1}
	}
	eng, _, dst, _ := buildSingle(t, plan)
	n, stopped := eng.RunUntil(200)
	if !stopped {
		t.Fatal("did not finish")
	}
	// Pipeline depth is a handful of cycles; 50 flits must take < 65.
	if n >= 65 {
		t.Errorf("50 flits took %d cycles; pipe not at full rate", n)
	}
	// Steady state: consecutive receives 1 cycle apart.
	gaps := 0
	for i := 5; i < len(dst.cycles); i++ {
		if dst.cycles[i]-dst.cycles[i-1] != 1 {
			gaps++
		}
	}
	if gaps > 0 {
		t.Errorf("%d bubbles in steady-state delivery", gaps)
	}
}

func TestLatencyStamps(t *testing.T) {
	eng, _, dst, _ := buildSingle(t, []plannedPacket{{100, 3}})
	eng.RunUntil(100)
	if len(dst.got) != 1 {
		t.Fatal("packet lost")
	}
	// Inject-to-delivery latency through one switch: link, buffer,
	// switch traversal, link, ejector buffer — small but nonzero.
	lat := dst.cycles[0] - dst.got[0].BirthCycle
	if lat < 3 || lat > 20 {
		t.Errorf("latency = %d, expected a few cycles", lat)
	}
}

// buildContention wires two injectors into a 2x1 switch.
func buildContention(t *testing.T, perSrc int, pktLen uint16) (*engine.Engine, *testDst, *Switch) {
	t.Helper()
	eng := engine.New()
	tb := routing.NewTable(1)
	if err := tb.Set(0, 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	sw, err := New(defaultCfg("sw0", 0, 2, 1, tb))
	if err != nil {
		t.Fatal(err)
	}
	plan := make([]plannedPacket, perSrc)
	for i := range plan {
		plan[i] = plannedPacket{100, pktLen}
	}
	for i := 0; i < 2; i++ {
		l, cr := wire(t, eng, []string{"injA", "injB"}[i])
		if err := sw.ConnectInput(i, l, cr); err != nil {
			t.Fatal(err)
		}
		inj, err := nic.NewInjector(flit.EndpointID(i+1), l, cr, sw.BufDepth(), 32, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.MustRegister(&testSrc{name: []string{"srcA", "srcB"}[i], inj: inj, plan: plan})
	}
	outL, outCr := wire(t, eng, "out")
	ej, err := nic.NewEjector(100, outL, outCr, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.ConnectOutput(0, outL, outCr, ej.Depth()); err != nil {
		t.Fatal(err)
	}
	if err := sw.CheckWired(); err != nil {
		t.Fatal(err)
	}
	dst := &testDst{name: "dst", ej: ej, want: 2 * perSrc}
	eng.MustRegister(sw)
	eng.MustRegister(dst)
	return eng, dst, sw
}

func TestContentionWormholeNoInterleave(t *testing.T) {
	eng, dst, sw := buildContention(t, 10, 5)
	_, stopped := eng.RunUntil(5000)
	if !stopped {
		t.Fatal("did not finish")
	}
	// Flits of one packet must be contiguous on the shared output.
	for i := 1; i < len(dst.order); i++ {
		cur, prev := dst.order[i], dst.order[i-1]
		if cur != prev {
			// A packet boundary: the previous packet must be complete.
			count := 0
			for j := i - 1; j >= 0 && dst.order[j] == prev; j-- {
				count++
			}
			if count != 5 {
				t.Fatalf("packet %v interleaved: %d contiguous flits", prev, count)
			}
		}
	}
	if sw.Stats().BlockedCycles == 0 {
		t.Error("no blocking recorded under 2:1 contention")
	}
	if sw.Stats().CongestionRate() <= 0 {
		t.Error("congestion rate is zero under contention")
	}
}

func TestContentionFairness(t *testing.T) {
	eng, dst, _ := buildContention(t, 20, 3)
	_, stopped := eng.RunUntil(5000)
	if !stopped {
		t.Fatal("did not finish")
	}
	counts := map[flit.EndpointID]int{}
	for _, p := range dst.got {
		counts[p.Src]++
	}
	if counts[1] != 20 || counts[2] != 20 {
		t.Errorf("per-source deliveries = %v", counts)
	}
	// Round-robin: in the first half of deliveries both sources appear.
	half := dst.got[:20]
	seen := map[flit.EndpointID]int{}
	for _, p := range half {
		seen[p.Src]++
	}
	if seen[1] < 5 || seen[2] < 5 {
		t.Errorf("early deliveries skewed: %v", seen)
	}
}

func TestSelectPortPolicies(t *testing.T) {
	tb := routing.NewTable(1)
	mk := func(sel routing.Policy) *Switch {
		cfg := defaultCfg("s", 0, 1, 2, tb)
		cfg.Select = sel
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.credits[0], s.credits[1] = 1, 5
		return s
	}
	head := func(seq uint64) *flit.Flit {
		return &flit.Flit{Kind: flit.Head, Packet: flit.MakePacketID(1, seq), Src: 1, Dst: 100, PacketLen: 2}
	}
	cand := []int{0, 1}

	if got := mk(routing.First).selectPort(cand, head(0)); got != 0 {
		t.Errorf("First = %d", got)
	}
	s := mk(routing.PacketModulo)
	if a, b := s.selectPort(cand, head(0)), s.selectPort(cand, head(1)); a != 0 || b != 1 {
		t.Errorf("PacketModulo = %d,%d", a, b)
	}
	if got := mk(routing.Adaptive).selectPort(cand, head(0)); got != 1 {
		t.Errorf("Adaptive = %d, want port with more credits", got)
	}
	s = mk(routing.Random)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[s.selectPort(cand, head(uint64(i)))] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("Random never picked both ports: %v", seen)
	}
	// Single candidate bypasses policy.
	if got := mk(routing.Random).selectPort([]int{1}, head(0)); got != 1 {
		t.Errorf("single candidate = %d", got)
	}
}

func TestResetStats(t *testing.T) {
	eng, _, _, sw := buildSingle(t, []plannedPacket{{100, 2}})
	eng.RunUntil(100)
	if sw.Stats().FlitsRouted == 0 {
		t.Fatal("nothing routed")
	}
	sw.ResetStats()
	st := sw.Stats()
	if st.FlitsRouted != 0 || st.BlockedCycles != 0 || st.Cycles != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	bs := sw.BufferStats()
	if len(bs) != 1 || bs[0].Pushes != 0 {
		t.Errorf("buffer stats after reset = %+v", bs)
	}
}

func TestCongestionRateZeroWhenIdle(t *testing.T) {
	if got := (Stats{}).CongestionRate(); got != 0 {
		t.Errorf("idle congestion = %v", got)
	}
	s := Stats{BlockedCycles: 3, FlitsRouted: 1}
	if got := s.CongestionRate(); got != 0.75 {
		t.Errorf("congestion = %v, want 0.75", got)
	}
}
