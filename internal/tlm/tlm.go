// Package tlm is a SystemC-style simulation backend — the stand-in for
// the paper's "SystemC (MPARM)" baseline in Table 2 (20 Kcycles/s
// against the emulator's 50 M).
//
// It drives the *same* component set as the emulation engine, so the
// results are bit-identical; what changes is the scheduler. Where the
// engine walks a static slice twice per cycle, this kernel models
// SystemC's dynamic scheduling: every component is a process that
// "waits on the clock" — it is re-inserted into a time-ordered event
// calendar (a heap) on every cycle, for both the evaluate (Tick) and
// update (Commit) phases. The per-cycle heap traffic is the structural
// overhead a cycle-accurate SystemC simulation pays, and benchmarks
// over this package regenerate the middle row of the paper's Table 2.
package tlm

import (
	"container/heap"
	"fmt"

	"nocemu/internal/engine"
)

// phase orders evaluate before update within one cycle.
const (
	phaseEvaluate = 0
	phaseUpdate   = 1
)

type process struct {
	comp  engine.Component
	phase int
	seq   int
	wake  uint64
}

type calendar []*process

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].wake != c[j].wake {
		return c[i].wake < c[j].wake
	}
	if c[i].phase != c[j].phase {
		return c[i].phase < c[j].phase
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x interface{}) { *c = append(*c, x.(*process)) }
func (c *calendar) Pop() interface{} {
	old := *c
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*c = old[:n-1]
	return p
}

// Stats counts the kernel's dynamic scheduling work.
type Stats struct {
	// HeapOps counts calendar pushes plus pops.
	HeapOps uint64
	// Dispatches counts process executions.
	Dispatches uint64
}

// Simulator schedules an engine's components through a dynamic event
// calendar.
type Simulator struct {
	cal      calendar
	stoppers []engine.Stopper
	cycle    uint64
	stats    Stats
}

// New builds a simulator over the components registered in eng. The
// engine itself is not used afterwards; this kernel owns the schedule.
func New(eng *engine.Engine) (*Simulator, error) {
	if eng == nil {
		return nil, fmt.Errorf("tlm: nil engine")
	}
	comps := eng.Components()
	if len(comps) == 0 {
		return nil, fmt.Errorf("tlm: engine has no components")
	}
	s := &Simulator{}
	for i, c := range comps {
		s.cal = append(s.cal,
			&process{comp: c, phase: phaseEvaluate, seq: i},
			&process{comp: c, phase: phaseUpdate, seq: i})
		if st, ok := c.(engine.Stopper); ok {
			s.stoppers = append(s.stoppers, st)
		}
	}
	heap.Init(&s.cal)
	s.stats.HeapOps += uint64(len(s.cal))
	return s, nil
}

// Cycle returns the number of completed cycles.
func (s *Simulator) Cycle() uint64 { return s.cycle }

// Stats returns the scheduling-work counters.
func (s *Simulator) Stats() Stats { return s.stats }

// step executes one full cycle through the calendar.
func (s *Simulator) step() {
	target := s.cycle
	for len(s.cal) > 0 && s.cal[0].wake == target {
		p := heap.Pop(&s.cal).(*process)
		s.stats.HeapOps++
		s.stats.Dispatches++
		switch p.phase {
		case phaseEvaluate:
			p.comp.Tick(target)
		case phaseUpdate:
			p.comp.Commit(target)
		}
		// SystemC-style wait(clk): the process re-enters the calendar
		// for the next cycle.
		p.wake = target + 1
		heap.Push(&s.cal, p)
		s.stats.HeapOps++
	}
	s.cycle++
}

// Run advances n cycles.
func (s *Simulator) Run(n uint64) uint64 {
	for i := uint64(0); i < n; i++ {
		s.step()
	}
	return n
}

// RunUntil advances until every stopper is done or maxCycles elapse,
// mirroring engine.RunUntil.
func (s *Simulator) RunUntil(maxCycles uint64) (uint64, bool) {
	if len(s.stoppers) == 0 {
		return s.Run(maxCycles), false
	}
	var executed uint64
	for executed < maxCycles {
		allDone := true
		for _, st := range s.stoppers {
			if !st.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			return executed, true
		}
		s.step()
		executed++
	}
	return executed, false
}
