package tlm

import (
	"testing"

	"nocemu/internal/engine"
	"nocemu/internal/flit"
	"nocemu/internal/platform"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(engine.New()); err == nil {
		t.Error("empty engine accepted")
	}
}

// recorder checks phase ordering under the dynamic scheduler.
type recorder struct {
	name string
	log  *[]string
}

func (r *recorder) ComponentName() string { return r.name }
func (r *recorder) Tick(c uint64)         { *r.log = append(*r.log, r.name+":tick") }
func (r *recorder) Commit(c uint64)       { *r.log = append(*r.log, r.name+":commit") }

func TestPhaseOrderingPreserved(t *testing.T) {
	eng := engine.New()
	var log []string
	eng.MustRegister(&recorder{name: "a", log: &log})
	eng.MustRegister(&recorder{name: "b", log: &log})
	sim, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(1)
	want := []string{"a:tick", "b:tick", "a:commit", "b:commit"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
	if sim.Cycle() != 1 {
		t.Errorf("cycle = %d", sim.Cycle())
	}
}

// The equivalence check: TLM scheduling produces exactly the emulator's
// results on the paper platform, because the components are shared and
// the phase order is preserved.
func TestTLMMatchesEmulator(t *testing.T) {
	cfg, err := platform.PaperConfig(platform.PaperOptions{
		Traffic: platform.PaperBurst, PacketsPerTG: 60, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Engine run.
	pe, err := platform.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := pe.Run(2_000_000); !stopped {
		t.Fatal("emulator did not finish")
	}
	// TLM run over a fresh identical platform.
	pt, err := platform.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(pt.Engine())
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := sim.RunUntil(2_000_000); !stopped {
		t.Fatal("tlm did not finish")
	}
	for _, ep := range []flit.EndpointID{100, 101, 102, 103} {
		a, _ := pe.TR(ep)
		b, _ := pt.TR(ep)
		if a.Stats() != b.Stats() {
			t.Errorf("TR %d stats differ:\n%+v\n%+v", ep, a.Stats(), b.Stats())
		}
	}
	if st := sim.Stats(); st.HeapOps == 0 || st.Dispatches == 0 {
		t.Errorf("stats empty: %+v", st)
	}
}

func TestRunUntilCap(t *testing.T) {
	eng := engine.New()
	var log []string
	eng.MustRegister(&recorder{name: "a", log: &log})
	sim, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	// No stoppers: run to cap.
	if n, stopped := sim.RunUntil(7); stopped || n != 7 {
		t.Errorf("n=%d stopped=%v", n, stopped)
	}
}

func TestHeapOpsScaleWithComponentsAndCycles(t *testing.T) {
	mk := func(n int) *Simulator {
		eng := engine.New()
		var log []string
		for i := 0; i < n; i++ {
			eng.MustRegister(&recorder{name: string(rune('a' + i)), log: &log})
		}
		sim, err := New(eng)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	a := mk(2)
	a.Run(10)
	b := mk(8)
	b.Run(10)
	if b.Stats().HeapOps <= a.Stats().HeapOps {
		t.Error("heap ops do not scale with component count")
	}
	c := mk(2)
	c.Run(100)
	if c.Stats().HeapOps <= a.Stats().HeapOps {
		t.Error("heap ops do not scale with cycles")
	}
}
