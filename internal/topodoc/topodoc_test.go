package topodoc

import (
	"os"
	"strings"
	"testing"
)

// TestRenderMatchesCommittedDoc is the in-tree version of the `make
// check` drift gate: the committed TOPOLOGIES.md must be exactly what
// the live registries render.
func TestRenderMatchesCommittedDoc(t *testing.T) {
	got, err := Render()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../../TOPOLOGIES.md")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Error("TOPOLOGIES.md is stale: run 'make topos' (or `go run ./cmd/nocgen topos > TOPOLOGIES.md`)")
	}
}

// TestRenderCoversEveryRegisteredKind: each registered generator and
// workload must appear in the catalog, and the structural columns must
// come out measured, not blank.
func TestRenderCoversEveryRegisteredKind(t *testing.T) {
	got, err := Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"### line", "### ring", "### mesh", "### torus", "### star",
		"### tree", "### full", "### paper-six",
		"### butterfly", "### fattree", "### dragonfly",
		"| uniform |", "| hotspot |", "| incast |", "| flows |",
		"fattree-updown", "flatfly-dor",
		"yes (CDG acyclic)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("catalog is missing %q", want)
		}
	}
}
