package topology

import (
	"fmt"
	"sort"
)

// ParamDoc documents one integer parameter of a generator.
type ParamDoc struct {
	Name    string
	Default int
	Doc     string
}

// Params carries a generator's resolved parameters: every documented
// parameter is present (defaults filled in by FromSpec).
type Params map[string]int

// Get returns a resolved parameter value.
func (p Params) Get(name string) int { return p[name] }

// Generator is one registered topology family. Registering a generator
// is all it takes to make a new topology reachable from JSON configs,
// the -topo flag and the TOPOLOGIES.md catalog: the Build closure emits
// the switch graph (with its Router annotation and Terminals list), and
// the metadata renders the documentation.
type Generator struct {
	// Kind is the registry key ("mesh", "fattree", ...).
	Kind string
	// Summary is a one-line description for the catalog.
	Summary string
	// Params documents the accepted parameters; FromSpec rejects
	// parameters outside this list and fills defaults for omitted ones.
	Params []ParamDoc
	// RoutingDoc names the route-table scheme the generator's Router
	// emits ("XY dimension-ordered", "up*/down*", ...).
	RoutingDoc string
	// Notes carries extra catalog context (deadlock caveats, terminal
	// placement).
	Notes string
	// Example is a small representative spec the catalog renders radix,
	// diameter and deadlock status from.
	Example Spec
	// Build materializes the topology from resolved parameters.
	Build func(p Params) (*Topology, error)
}

var generators = map[string]Generator{}

// Register adds a generator to the registry; it panics on duplicate or
// empty kinds (registration is an init-time programming act, like
// flag.Var).
func Register(g Generator) {
	if g.Kind == "" {
		panic("topology: Register with empty kind")
	}
	if g.Build == nil {
		panic(fmt.Sprintf("topology: Register(%q) with nil Build", g.Kind))
	}
	if _, dup := generators[g.Kind]; dup {
		panic(fmt.Sprintf("topology: Register(%q) called twice", g.Kind))
	}
	generators[g.Kind] = g
}

// Lookup returns the generator registered under kind.
func Lookup(kind string) (Generator, bool) {
	g, ok := generators[kind]
	return g, ok
}

// List returns every registered generator, sorted by kind.
func List() []Generator {
	out := make([]Generator, 0, len(generators))
	for _, g := range generators {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// Kinds returns the sorted registered kind names.
func Kinds() []string {
	out := make([]string, 0, len(generators))
	for k := range generators {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FromSpec materializes a topology from a declarative spec: it resolves
// the generator, validates the parameter names, fills defaults and
// builds the switch graph.
func FromSpec(s Spec) (*Topology, error) {
	g, ok := Lookup(s.Kind)
	if !ok {
		return nil, fmt.Errorf("topology: unknown kind %q (known: %v)", s.Kind, Kinds())
	}
	resolved := make(Params, len(g.Params))
	for _, pd := range g.Params {
		resolved[pd.Name] = pd.Default
	}
	for name, v := range s.Param {
		if _, known := resolved[name]; !known {
			return nil, fmt.Errorf("topology: kind %q has no parameter %q (params: %v)",
				s.Kind, name, paramNames(g))
		}
		resolved[name] = v
	}
	return g.Build(resolved)
}

func paramNames(g Generator) []string {
	names := make([]string, len(g.Params))
	for i, pd := range g.Params {
		names[i] = pd.Name
	}
	return names
}
