package topology

// Router is a topology-specific routing recipe. Generators attach one
// to the topologies they build (SetRouter); routing.BuildTable lowers
// it into per-switch route tables by asking, for every (switch,
// destination-switch) pair, which neighbor switches are legal next
// hops. Returning nil for a pair means the router has no opinion there
// and the table simply omits the entry (routing.Validate catches the
// omission if a packet would actually need it).
//
// The interface deliberately speaks in switches, not ports: the port
// mapping is owned by routing.BuildFromRouter, which resolves each
// next-hop switch to the first matching output port in canonical
// SwitchOutputs order. That makes route tables a pure function of
// (topology, router) and keeps generators free of port-index
// bookkeeping.
type Router interface {
	// Name identifies the routing scheme ("xy", "updown", ...); the
	// platform layer uses it to honor explicit Config.Routing requests.
	Name() string
	// NextHops returns the legal next-hop switches for a packet at
	// switch `at` destined for an endpoint on switch `dst`. It is not
	// called with at == dst (delivery is local).
	NextHops(t *Topology, at, dst NodeID) []NodeID
}

// XYRouter is dimension-ordered X-then-Y routing on a W-wide grid
// numbered row-major (switch = y*W + x). It deliberately ignores any
// wraparound links a torus adds: packets always travel the mesh
// interior, which keeps the channel-dependency graph acyclic (each
// dimension is traversed monotonically) at the cost of longer torus
// paths. This matches the historical BuildXY tables byte for byte.
type XYRouter struct {
	// W is the grid width.
	W int
}

// Name implements Router.
func (r XYRouter) Name() string { return "xy" }

// NextHops implements Router.
func (r XYRouter) NextHops(t *Topology, at, dst NodeID) []NodeID {
	x, y := int(at)%r.W, int(at)/r.W
	dx, dy := int(dst)%r.W, int(dst)/r.W
	var next NodeID
	switch {
	case x < dx:
		next = at + 1
	case x > dx:
		next = at - 1
	case y < dy:
		next = at + NodeID(r.W)
	default:
		next = at - NodeID(r.W)
	}
	return []NodeID{next}
}

// TorusMinimalRouter is wrap-aware dimension-ordered routing on a
// W×H torus: each dimension independently picks the shorter way
// around the ring (ties go the positive direction). Minimal torus
// routing without dateline virtual channels closes a cycle of channel
// dependencies around each ring, so platforms built with it are
// rejected by the deadlock checker unless AllowDeadlock is set — it
// exists as the documented deadlock-prone configuration.
type TorusMinimalRouter struct {
	// W, H are the torus dimensions.
	W, H int
}

// Name implements Router.
func (r TorusMinimalRouter) Name() string { return "torus-minimal" }

// NextHops implements Router.
func (r TorusMinimalRouter) NextHops(t *Topology, at, dst NodeID) []NodeID {
	x, y := int(at)%r.W, int(at)/r.W
	dx, dy := int(dst)%r.W, int(dst)/r.W
	if x != dx {
		nx := ringStep(x, dx, r.W)
		return []NodeID{NodeID(y*r.W + nx)}
	}
	ny := ringStep(y, dy, r.H)
	return []NodeID{NodeID(ny*r.W + x)}
}

// ringStep moves one hop from a toward b on a ring of n positions,
// taking the shorter direction (ties positive).
func ringStep(a, b, n int) int {
	fwd := ((b - a) + n) % n
	if fwd <= n-fwd {
		return (a + 1) % n
	}
	return (a - 1 + n) % n
}

// FlatFlyRouter is dimension-ordered routing on a flattened butterfly:
// routers form a W×H grid fully connected within each row and each
// column, so DOR needs at most one hop per dimension (x first, then
// y). Each dimension is resolved by a single direct link, so the
// channel-dependency graph is acyclic.
type FlatFlyRouter struct {
	// W, H are the router-grid dimensions.
	W, H int
}

// Name implements Router.
func (r FlatFlyRouter) Name() string { return "flatfly-dor" }

// NextHops implements Router.
func (r FlatFlyRouter) NextHops(t *Topology, at, dst NodeID) []NodeID {
	x, y := int(at)%r.W, int(at)/r.W
	dx, dy := int(dst)%r.W, int(dst)/r.W
	if x != dx {
		return []NodeID{NodeID(y*r.W + dx)}
	}
	return []NodeID{NodeID(dy*r.W + x)}
}

// FatTreeRouter routes a k-ary fat-tree (folded Clos) with the
// standard up*/down* discipline specialized to the three-layer Clos:
// packets climb toward a nearest common ancestor spreading over every
// legal upward port (multipath), then descend on the unique downward
// path. Ascending and descending channels are disjoint, so the
// channel-dependency graph is acyclic.
//
// Switch numbering (half = k/2): edge(p,i) = p*half+i for pod p,
// agg(p,j) = k²/2 + p*half+j, core(x,y) = k² + x*half+y where core
// (x,y) attaches to aggregation switch x of every pod.
type FatTreeRouter struct {
	// K is the switch arity; k/2 hosts per edge switch.
	K int
}

// Name implements Router.
func (r FatTreeRouter) Name() string { return "fattree-updown" }

// NextHops implements Router.
func (r FatTreeRouter) NextHops(t *Topology, at, dst NodeID) []NodeID {
	half := r.K / 2
	edgeN := r.K * half    // number of edge switches
	aggEnd := 2 * edgeN    // agg ids are [edgeN, 2*edgeN)
	if int(dst) >= edgeN { // endpoints only live on edge switches
		return nil
	}
	dp := int(dst) / half // destination pod
	switch {
	case int(at) < edgeN: // at an edge switch
		p := int(at) / half
		if p == dp {
			// Common ancestor is any aggregation switch of the pod.
			hops := make([]NodeID, half)
			for j := 0; j < half; j++ {
				hops[j] = NodeID(edgeN + p*half + j)
			}
			return hops
		}
		// Cross-pod: climb; every aggregation switch leads to cores.
		hops := make([]NodeID, half)
		for j := 0; j < half; j++ {
			hops[j] = NodeID(edgeN + p*half + j)
		}
		return hops
	case int(at) < aggEnd: // at aggregation switch agg(p, j)
		p := (int(at) - edgeN) / half
		j := (int(at) - edgeN) % half
		if p == dp {
			return []NodeID{dst} // descend to the edge switch
		}
		// Climb: agg(p,j) connects to cores (j, y) for all y.
		hops := make([]NodeID, half)
		for y := 0; y < half; y++ {
			hops[y] = NodeID(aggEnd + j*half + y)
		}
		return hops
	default: // at core switch core(x, y)
		x := (int(at) - aggEnd) / half
		return []NodeID{NodeID(edgeN + dp*half + x)} // descend into the pod
	}
}

// UpDownRouter is generic up*/down* routing, deadlock-free on any
// connected graph: a breadth-first traversal from switch 0 assigns
// each switch a rank, a link toward a higher rank is "down" (toward
// the leaves) and toward a lower rank is "up" (toward the root), and
// a legal path crosses zero or more up links followed by zero or more
// down links. No packet ever turns from down back to up, so no
// channel-dependency cycle can close. The emitted tables are minimal
// within the up*/down* constraint.
//
// It is the default for topologies whose natural minimal routing
// deadlocks without virtual channels (dragonfly).
type UpDownRouter struct {
	rank []int      // BFS order index from switch 0; lower = closer to root
	adj  [][]Edge   // cached forward adjacency
	radj [][]NodeID // cached reverse adjacency over down links only

	// Per-destination memo: table construction iterates destinations in
	// the outer loop, so caching the last destination's distance fields
	// turns an O(switches² · edges) build into O(switches · edges).
	lastDst  NodeID
	downDist []int // hops to dst using only down links; -1 if unreachable
	cost     []int // min legal up*/down* hops to dst
}

// Name implements Router.
func (r *UpDownRouter) Name() string { return "updown" }

// build ranks the switches by BFS dequeue order from switch 0 and
// caches the adjacency views used by every later query.
func (r *UpDownRouter) build(t *Topology) {
	n := t.NumSwitches()
	r.rank = make([]int, n)
	for i := range r.rank {
		r.rank[i] = -1
	}
	r.adj = t.Adjacency()
	queue := []NodeID{0}
	r.rank[0] = 0
	next := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range r.adj[cur] {
			if r.rank[e.To] < 0 {
				r.rank[e.To] = next
				next++
				queue = append(queue, e.To)
			}
		}
	}
	// Reverse adjacency restricted to down links: radj[v] holds the
	// switches u with a down link u→v.
	r.radj = make([][]NodeID, n)
	for _, l := range t.Links() {
		if r.down(l.From, l.To) {
			r.radj[l.To] = append(r.radj[l.To], l.From)
		}
	}
	r.lastDst = -1
}

// down reports whether the link u→v descends (away from the root).
func (r *UpDownRouter) down(u, v NodeID) bool { return r.rank[v] > r.rank[u] }

// prepare computes downDist and cost for one destination.
func (r *UpDownRouter) prepare(t *Topology, dst NodeID) {
	n := t.NumSwitches()
	r.downDist = make([]int, n)
	r.cost = make([]int, n)
	for i := range r.downDist {
		r.downDist[i] = -1
	}

	// downDist: reverse BFS from dst over down links only.
	r.downDist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, u := range r.radj[cur] {
			if r.downDist[u] < 0 {
				r.downDist[u] = r.downDist[cur] + 1
				queue = append(queue, u)
			}
		}
	}

	// cost[v] = min(downDist[v], 1 + min over up-neighbors u of cost[u]).
	// Up links strictly decrease rank, so evaluating switches in
	// increasing rank order sees every up-neighbor's final cost first.
	// rank is a permutation of 0..n-1 for connected graphs; bucket sort.
	byRank := make([]NodeID, n)
	for i := range byRank {
		byRank[i] = -1
	}
	for v := NodeID(0); int(v) < n; v++ {
		if rk := r.rank[v]; rk >= 0 {
			byRank[rk] = v
		}
	}
	const inf = int(^uint(0) >> 1)
	for i := range r.cost {
		r.cost[i] = inf
	}
	for _, v := range byRank {
		if v < 0 {
			continue
		}
		c := inf
		if r.downDist[v] >= 0 {
			c = r.downDist[v]
		}
		for _, e := range r.adj[v] {
			if r.down(v, e.To) {
				continue // up candidates only
			}
			if r.cost[e.To] < inf && r.cost[e.To]+1 < c {
				c = r.cost[e.To] + 1
			}
		}
		r.cost[v] = c
	}
	r.lastDst = dst
}

// NextHops implements Router.
func (r *UpDownRouter) NextHops(t *Topology, at, dst NodeID) []NodeID {
	if r.rank == nil || len(r.rank) != t.NumSwitches() {
		r.build(t)
	}
	if r.lastDst != dst {
		r.prepare(t, dst)
	}
	var hops []NodeID
	if r.downDist[at] >= 0 {
		// Descend-only phase: once a packet can reach dst going down,
		// every candidate keeps descending (never turns back up).
		for _, e := range r.adj[at] {
			if r.down(at, e.To) && r.downDist[e.To] == r.downDist[at]-1 {
				hops = append(hops, e.To)
			}
		}
		return hops
	}
	// Climb phase: take up links that stay on a minimal legal path.
	const inf = int(^uint(0) >> 1)
	if r.cost[at] == inf {
		return nil
	}
	for _, e := range r.adj[at] {
		if r.down(at, e.To) {
			continue
		}
		if r.cost[e.To] != inf && r.cost[e.To]+1 == r.cost[at] {
			hops = append(hops, e.To)
		}
	}
	return hops
}
