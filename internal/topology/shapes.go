package topology

import (
	"fmt"

	"nocemu/internal/flit"
)

// The classic shapes register as generators so that JSON configs, the
// -topo flag and the TOPOLOGIES.md catalog see them through the same
// registry as the large-scale zoo topologies (zoo.go). The exported
// constructors below lower into the registry; the Build closures own
// the link/endpoint construction order, which is part of the platform
// byte-identity contract (ports are numbered by insertion order).
func init() {
	Register(Generator{
		Kind:    "line",
		Summary: "bidirectional chain 0 <-> 1 <-> ... <-> n-1",
		Params: []ParamDoc{
			{Name: "n", Default: 4, Doc: "number of switches"},
		},
		RoutingDoc: "shortest path",
		Notes:      "deadlock-free: the channel graph is a tree",
		Example:    Spec{Kind: "line", Param: map[string]int{"n": 4}},
		Build:      func(p Params) (*Topology, error) { return buildLine(p.Get("n")) },
	})
	Register(Generator{
		Kind:    "ring",
		Summary: "bidirectional ring (n >= 3)",
		Params: []ParamDoc{
			{Name: "n", Default: 4, Doc: "number of switches"},
		},
		RoutingDoc: "shortest path",
		Notes:      "deadlock-free for single-sink traffic patterns; cyclic flows need care",
		Example:    Spec{Kind: "ring", Param: map[string]int{"n": 4}},
		Build:      func(p Params) (*Topology, error) { return buildRing(p.Get("n")) },
	})
	Register(Generator{
		Kind:    "mesh",
		Summary: "w x h 2-D mesh, switch (x,y) = y*w+x",
		Params: []ParamDoc{
			{Name: "w", Default: 4, Doc: "mesh width"},
			{Name: "h", Default: 4, Doc: "mesh height"},
		},
		RoutingDoc: "XY dimension-ordered",
		Notes:      "deadlock-free: XY forbids the turns that close dependency cycles",
		Example:    Spec{Kind: "mesh", Param: map[string]int{"w": 4, "h": 4}},
		Build:      func(p Params) (*Topology, error) { return buildMesh(p.Get("w"), p.Get("h")) },
	})
	Register(Generator{
		Kind:    "torus",
		Summary: "w x h 2-D torus (wrap-around mesh, both dims >= 3)",
		Params: []ParamDoc{
			{Name: "w", Default: 4, Doc: "torus width"},
			{Name: "h", Default: 4, Doc: "torus height"},
			{Name: "minimal", Default: 0, Doc: "1 = wrap-aware minimal DOR (deadlock-prone without dateline VCs)"},
		},
		RoutingDoc: "XY dimension-ordered (mesh interior; wrap links unused) — minimal=1 switches to wrap-aware DOR",
		Notes:      "default XY routing is deadlock-free; minimal=1 closes ring dependency cycles and is rejected by the deadlock checker",
		Example:    Spec{Kind: "torus", Param: map[string]int{"w": 4, "h": 4}},
		Build: func(p Params) (*Topology, error) {
			return buildTorus(p.Get("w"), p.Get("h"), p.Get("minimal") != 0)
		},
	})
	Register(Generator{
		Kind:    "star",
		Summary: "hub switch 0 with bidirectional spokes to leaves 1..n",
		Params: []ParamDoc{
			{Name: "leaves", Default: 4, Doc: "number of leaf switches"},
		},
		RoutingDoc: "shortest path",
		Notes:      "deadlock-free: the channel graph is a tree",
		Example:    Spec{Kind: "star", Param: map[string]int{"leaves": 4}},
		Build:      func(p Params) (*Topology, error) { return buildStar(p.Get("leaves")) },
	})
	Register(Generator{
		Kind:    "tree",
		Summary: "complete fanout-ary tree, breadth-first numbering from the root",
		Params: []ParamDoc{
			{Name: "depth", Default: 2, Doc: "levels below the root (>= 1)"},
			{Name: "fanout", Default: 2, Doc: "children per switch (>= 2)"},
		},
		RoutingDoc: "shortest path (unique tree paths)",
		Notes:      "deadlock-free: the channel graph is a tree",
		Example:    Spec{Kind: "tree", Param: map[string]int{"depth": 2, "fanout": 2}},
		Build:      func(p Params) (*Topology, error) { return buildTree(p.Get("depth"), p.Get("fanout")) },
	})
	Register(Generator{
		Kind:    "full",
		Summary: "fully connected graph, a link between every switch pair",
		Params: []ParamDoc{
			{Name: "n", Default: 4, Doc: "number of switches (>= 2)"},
		},
		RoutingDoc: "shortest path (single hop)",
		Notes:      "deadlock-free: every route is one direct link",
		Example:    Spec{Kind: "full", Param: map[string]int{"n": 4}},
		Build:      func(p Params) (*Topology, error) { return buildFullyConnected(p.Get("n")) },
	})
	Register(Generator{
		Kind:       "paper-six",
		Summary:    "the paper's 6-switch platform: 4 TGs, 4 TRs, dual paths via S2/S3",
		RoutingDoc: "shortest path (experiments override per-destination ports)",
		Notes:      "endpoints are part of the shape (TG0-3 at S0/S1, TR100-103 at S4/S5)",
		Example:    Spec{Kind: "paper-six"},
		Build:      func(p Params) (*Topology, error) { return buildPaperSix() },
	})
}

// Line returns an n-switch chain with bidirectional links
// 0 <-> 1 <-> ... <-> n-1. Endpoints are attached by the caller.
func Line(n int) (*Topology, error) {
	return FromSpec(Spec{Kind: "line", Param: map[string]int{"n": n}})
}

func buildLine(n int) (*Topology, error) {
	t, err := New(fmt.Sprintf("line-%d", n), n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n-1; i++ {
		if err := t.AddBiLink(NodeID(i), NodeID(i+1)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Ring returns an n-switch bidirectional ring (n >= 3).
func Ring(n int) (*Topology, error) {
	return FromSpec(Spec{Kind: "ring", Param: map[string]int{"n": n}})
}

func buildRing(n int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 switches, got %d", n)
	}
	t, err := New(fmt.Sprintf("ring-%d", n), n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := t.AddBiLink(NodeID(i), NodeID((i+1)%n)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Mesh returns a w x h 2-D mesh with bidirectional links. Switch (x, y)
// has identifier y*w + x.
func Mesh(w, h int) (*Topology, error) {
	return FromSpec(Spec{Kind: "mesh", Param: map[string]int{"w": w, "h": h}})
}

func buildMesh(w, h int) (*Topology, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topology: mesh %dx%d", w, h)
	}
	t, err := New(fmt.Sprintf("mesh-%dx%d", w, h), w*h)
	if err != nil {
		return nil, err
	}
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := t.AddBiLink(id(x, y), id(x+1, y)); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := t.AddBiLink(id(x, y), id(x, y+1)); err != nil {
					return nil, err
				}
			}
		}
	}
	t.SetRouter(XYRouter{W: w})
	return t, nil
}

// Torus returns a w x h 2-D torus (wrap-around mesh); w and h must be
// at least 3 so wrap links do not duplicate mesh links.
func Torus(w, h int) (*Topology, error) {
	return FromSpec(Spec{Kind: "torus", Param: map[string]int{"w": w, "h": h}})
}

func buildTorus(w, h int, minimal bool) (*Topology, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("topology: torus %dx%d needs both dims >= 3", w, h)
	}
	t, err := buildMesh(w, h)
	if err != nil {
		return nil, err
	}
	t.name = fmt.Sprintf("torus-%dx%d", w, h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		if err := t.AddBiLink(id(w-1, y), id(0, y)); err != nil {
			return nil, err
		}
	}
	for x := 0; x < w; x++ {
		if err := t.AddBiLink(id(x, h-1), id(x, 0)); err != nil {
			return nil, err
		}
	}
	if minimal {
		t.SetRouter(TorusMinimalRouter{W: w, H: h})
	}
	return t, nil
}

// Star returns a hub-and-spoke topology: switch 0 is the hub joined by
// bidirectional links to leaves 1..n.
func Star(leaves int) (*Topology, error) {
	return FromSpec(Spec{Kind: "star", Param: map[string]int{"leaves": leaves}})
}

func buildStar(leaves int) (*Topology, error) {
	if leaves < 1 {
		return nil, fmt.Errorf("topology: star with %d leaves", leaves)
	}
	t, err := New(fmt.Sprintf("star-%d", leaves), leaves+1)
	if err != nil {
		return nil, err
	}
	for i := 1; i <= leaves; i++ {
		if err := t.AddBiLink(0, NodeID(i)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MeshXY returns the switch coordinates of switch s in a w-wide mesh,
// for XY routing.
func MeshXY(s NodeID, w int) (x, y int) {
	return int(s) % w, int(s) / w
}

// PaperSix returns the paper's experimental platform (slides 17-19):
// six switches, four traffic generators, four traffic receptors.
//
// Layout (traffic flows left to right; all inter-switch links exist in
// both directions):
//
//	TG0,TG1 -> S0 --\            /-- S4 -> TR0,TR1
//	                 >-- S2, S3 --<
//	TG2,TG3 -> S1 --/            \-- S5 -> TR2,TR3
//
// Every source has two routing possibilities towards any sink (via S2
// or via S3). Under the paper's experiment routing, TG0/TG1 traffic to
// S4 shares link S2->S4 and TG2/TG3 traffic to S5 shares link S3->S5,
// so with each TG at 45% of link bandwidth those two links carry 90%.
func PaperSix() (*Topology, error) {
	return FromSpec(Spec{Kind: "paper-six"})
}

func buildPaperSix() (*Topology, error) {
	t, err := New("paper-six", 6)
	if err != nil {
		return nil, err
	}
	pairs := [][2]NodeID{
		{0, 2}, {0, 3},
		{1, 2}, {1, 3},
		{2, 4}, {2, 5},
		{3, 4}, {3, 5},
	}
	for _, p := range pairs {
		if err := t.AddBiLink(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	for i, sw := range []NodeID{0, 0, 1, 1} {
		if err := t.AddSource(flit.EndpointID(i), sw); err != nil {
			return nil, err
		}
	}
	for i, sw := range []NodeID{4, 4, 5, 5} {
		if err := t.AddSink(flit.EndpointID(100+i), sw); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// HotLinks returns the indices of the two links the paper's setup loads
// to 90% (S2->S4 and S3->S5) in a PaperSix topology.
func HotLinks(t *Topology) (s2s4, s3s5 int, err error) {
	s2s4, s3s5 = -1, -1
	for i, l := range t.Links() {
		if l.From == 2 && l.To == 4 {
			s2s4 = i
		}
		if l.From == 3 && l.To == 5 {
			s3s5 = i
		}
	}
	if s2s4 < 0 || s3s5 < 0 {
		return 0, 0, fmt.Errorf("topology %s: hot links not found", t.Name())
	}
	return s2s4, s3s5, nil
}

// FullyConnected returns n switches (n >= 2) with a bidirectional link
// between every pair — the upper bound on switch degree, useful as a
// routing/arbitration stress shape.
func FullyConnected(n int) (*Topology, error) {
	return FromSpec(Spec{Kind: "full", Param: map[string]int{"n": n}})
}

func buildFullyConnected(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: fully connected needs >= 2 switches, got %d", n)
	}
	t, err := New(fmt.Sprintf("full-%d", n), n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := t.AddBiLink(NodeID(i), NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Tree returns a complete fanout-ary tree of the given depth
// (depth >= 1 levels below the root) with bidirectional links. Switches
// are numbered in breadth-first order from the root (switch 0); leaves
// occupy the last level. Aggregation traffic (leaves to root) is the
// classic use.
func Tree(depth, fanout int) (*Topology, error) {
	return FromSpec(Spec{Kind: "tree", Param: map[string]int{"depth": depth, "fanout": fanout}})
}

func buildTree(depth, fanout int) (*Topology, error) {
	if depth < 1 || fanout < 2 {
		return nil, fmt.Errorf("topology: tree depth %d fanout %d", depth, fanout)
	}
	// Total nodes of a complete tree: (fanout^(depth+1) - 1) / (fanout - 1).
	total := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= fanout
		total += level
	}
	t, err := New(fmt.Sprintf("tree-%dx%d", depth, fanout), total)
	if err != nil {
		return nil, err
	}
	for parent := 0; ; parent++ {
		firstChild := parent*fanout + 1
		if firstChild >= total {
			break
		}
		for c := 0; c < fanout; c++ {
			child := firstChild + c
			if child >= total {
				break
			}
			if err := t.AddBiLink(NodeID(parent), NodeID(child)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// TreeLeaves returns the switch identifiers of the last level of a
// Tree(depth, fanout) topology.
func TreeLeaves(depth, fanout int) []NodeID {
	total := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= fanout
		total += level
	}
	leaves := make([]NodeID, 0, level)
	for i := total - level; i < total; i++ {
		leaves = append(leaves, NodeID(i))
	}
	return leaves
}
