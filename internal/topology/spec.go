package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec names a topology declaratively: a registered generator kind plus
// its integer parameters. Specs are the single construction currency of
// the framework — JSON configurations, the -topo CLI flag and the
// programmatic shape constructors all lower into one before a switch
// graph is materialized (FromSpec).
type Spec struct {
	// Kind names a registered generator (Lookup).
	Kind string
	// Param overrides generator parameters by name; omitted parameters
	// take the generator's documented default.
	Param map[string]int
}

// With returns a copy of the spec with one parameter set.
func (s Spec) With(name string, v int) Spec {
	p := make(map[string]int, len(s.Param)+1)
	for k, val := range s.Param {
		p[k] = val
	}
	p[name] = v
	return Spec{Kind: s.Kind, Param: p}
}

// String renders the spec in the -topo flag syntax
// ("mesh:h=4,w=4"; parameters sorted by name).
func (s Spec) String() string {
	if len(s.Param) == 0 {
		return s.Kind
	}
	names := make([]string, 0, len(s.Param))
	for k := range s.Param {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Kind)
	for i, k := range names {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, s.Param[k])
	}
	return b.String()
}

// ParseSpec parses the -topo flag syntax: "kind" or
// "kind:name=value,name=value" with integer values
// (e.g. "fattree:k=16", "torus:w=8,h=8,minimal=1").
func ParseSpec(text string) (Spec, error) {
	text = strings.TrimSpace(text)
	kind, rest, hasParams := strings.Cut(text, ":")
	kind = strings.TrimSpace(kind)
	if kind == "" {
		return Spec{}, fmt.Errorf("topology: empty spec")
	}
	spec := Spec{Kind: kind}
	if !hasParams {
		return spec, nil
	}
	spec.Param = map[string]int{}
	for _, item := range strings.Split(rest, ",") {
		name, val, ok := strings.Cut(item, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return Spec{}, fmt.Errorf("topology: spec %q: want name=value, got %q", text, item)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return Spec{}, fmt.Errorf("topology: spec %q: parameter %s: %v", text, name, err)
		}
		if _, dup := spec.Param[name]; dup {
			return Spec{}, fmt.Errorf("topology: spec %q: duplicate parameter %s", text, name)
		}
		spec.Param[name] = n
	}
	return spec, nil
}
