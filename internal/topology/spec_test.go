package topology

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"mesh:h=4,w=4",
		"fattree:k=16",
		"dragonfly:a=8,h=4,p=4",
		"paper-six",
	}
	for _, in := range cases {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if got := spec.String(); got != in {
			t.Errorf("ParseSpec(%q).String() = %q", in, got)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"mesh:",
		"mesh:w",
		"mesh:w=",
		"mesh:w=abc",
		"mesh:w=4,w=5",
		"mesh:=4",
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

func TestFromSpecDefaultsAndOverrides(t *testing.T) {
	// Omitted params take the generator defaults.
	topo, err := FromSpec(Spec{Kind: "mesh"})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSwitches() != 16 {
		t.Errorf("default mesh has %d switches, want 16", topo.NumSwitches())
	}
	// Explicit params override them.
	topo, err = FromSpec(Spec{Kind: "mesh", Param: map[string]int{"w": 2, "h": 3}})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSwitches() != 6 {
		t.Errorf("2x3 mesh has %d switches", topo.NumSwitches())
	}
}

func TestFromSpecRejectsUnknown(t *testing.T) {
	if _, err := FromSpec(Spec{Kind: "hypercube"}); err == nil {
		t.Error("unknown kind accepted")
	}
	_, err := FromSpec(Spec{Kind: "mesh", Param: map[string]int{"q": 9}})
	if err == nil {
		t.Fatal("unknown param accepted")
	}
	// The error names the valid parameters so the CLI message is usable.
	if !strings.Contains(err.Error(), "w") || !strings.Contains(err.Error(), "h") {
		t.Errorf("error does not list valid params: %v", err)
	}
}

func TestRegistryListsEveryKind(t *testing.T) {
	want := []string{
		"butterfly", "dragonfly", "fattree", "full", "line",
		"mesh", "paper-six", "ring", "star", "torus", "tree",
	}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds() = %v, want %v", got, want)
		}
	}
	for _, g := range List() {
		if g.Summary == "" || g.Build == nil {
			t.Errorf("%s: incomplete generator metadata", g.Kind)
		}
		if _, err := FromSpec(g.Example); err != nil {
			t.Errorf("%s: example spec does not build: %v", g.Kind, err)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	topo, err := FromSpec(Spec{Kind: "fattree", Param: map[string]int{"k": 4}})
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 8 edge + 8 agg + 4 core switches, k^3/4 = 16 hosts.
	if topo.NumSwitches() != 20 {
		t.Errorf("switches = %d, want 20", topo.NumSwitches())
	}
	terms := topo.Terminals()
	if len(terms) != 16 {
		t.Fatalf("terminals = %d, want 16", len(terms))
	}
	// Hosts live on edge switches only (ids 0..7), k/2 per switch.
	perSwitch := map[NodeID]int{}
	for _, sw := range terms {
		perSwitch[sw]++
		if int(sw) >= 8 {
			t.Errorf("terminal on non-edge switch %d", sw)
		}
	}
	for sw, n := range perSwitch {
		if n != 2 {
			t.Errorf("switch %d hosts %d terminals, want 2", sw, n)
		}
	}
	if topo.Router() == nil || topo.Router().Name() != "fattree-updown" {
		t.Errorf("fat-tree router annotation missing")
	}
}

func TestDragonflyShape(t *testing.T) {
	topo, err := FromSpec(Spec{Kind: "dragonfly", Param: map[string]int{"p": 2, "a": 4, "h": 2}})
	if err != nil {
		t.Fatal(err)
	}
	// g = a*h+1 = 9 groups of 4 routers; p=2 terminals each.
	if topo.NumSwitches() != 36 {
		t.Errorf("switches = %d, want 36", topo.NumSwitches())
	}
	if got := len(topo.Terminals()); got != 72 {
		t.Errorf("terminals = %d, want 72", got)
	}
	// Fully populated balanced dragonfly: every router has a-1 local +
	// h global links in each direction.
	adj := topo.Adjacency()
	for s, edges := range adj {
		if len(edges) != 5 {
			t.Errorf("router %d degree %d, want 5", s, len(edges))
		}
	}
	// Global connectivity: every group pair is joined by exactly one
	// link in each direction.
	const a, g = 4, 9
	pair := map[[2]int]int{}
	for _, l := range topo.Links() {
		gf, gt := int(l.From)/a, int(l.To)/a
		if gf != gt {
			pair[[2]int{gf, gt}]++
		}
	}
	if len(pair) != g*(g-1) {
		t.Fatalf("global link pairs = %d, want %d", len(pair), g*(g-1))
	}
	for k, n := range pair {
		if n != 1 {
			t.Errorf("groups %v joined by %d links", k, n)
		}
	}
}

func TestButterflyShape(t *testing.T) {
	topo, err := FromSpec(Spec{Kind: "butterfly", Param: map[string]int{"w": 4, "h": 3}})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSwitches() != 12 {
		t.Errorf("switches = %d, want 12", topo.NumSwitches())
	}
	// Flattened butterfly: degree (w-1) + (h-1) per router.
	adj := topo.Adjacency()
	for s, edges := range adj {
		if len(edges) != 5 {
			t.Errorf("router %d degree %d, want 5", s, len(edges))
		}
	}
	if topo.Router() == nil || topo.Router().Name() != "flatfly-dor" {
		t.Error("butterfly router annotation missing")
	}
}

func TestTerminalsDefaultToAllSwitches(t *testing.T) {
	topo, err := Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	terms := topo.Terminals()
	if len(terms) != 9 {
		t.Fatalf("terminals = %d, want 9", len(terms))
	}
	for i, sw := range terms {
		if int(sw) != i {
			t.Errorf("terminal %d on switch %d", i, sw)
		}
	}
}
