// Package topology describes the switch graph of an emulated NoC.
//
// The paper's platform is built around a configurable "switch topology":
// a set of switches joined by unidirectional links, with traffic
// generators (sources) and traffic receptors (sinks) attached to switch
// local ports. The topology fixes each switch's number of inputs and
// outputs — two of the three switch parameters the paper studies.
package topology

import (
	"fmt"

	"nocemu/internal/flit"
)

// NodeID identifies a switch within a topology.
type NodeID int

// Role says whether an endpoint injects or ejects traffic.
type Role uint8

const (
	// Source endpoints inject packets (traffic generators).
	Source Role = iota + 1
	// Sink endpoints absorb packets (traffic receptors).
	Sink
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Source:
		return "source"
	case Sink:
		return "sink"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// LinkSpec is a unidirectional switch-to-switch channel.
type LinkSpec struct {
	From, To NodeID
}

// EndpointSpec attaches an endpoint to a switch local port.
type EndpointSpec struct {
	ID     flit.EndpointID
	Switch NodeID
	Role   Role
}

// InConn describes one input port of a switch: it is fed either by an
// inter-switch link (Link >= 0) or by a local source endpoint.
type InConn struct {
	// Link is the index into Links(), or -1 for a local endpoint.
	Link int
	// Endpoint is the injecting endpoint when Link == -1.
	Endpoint flit.EndpointID
}

// OutConn describes one output port of a switch: it drives either an
// inter-switch link (Link >= 0) or a local sink endpoint.
type OutConn struct {
	// Link is the index into Links(), or -1 for a local endpoint.
	Link int
	// Endpoint is the receiving endpoint when Link == -1.
	Endpoint flit.EndpointID
}

// Topology is a switch graph plus endpoint attachments. Build one with
// New and the Add* methods, or with the shape constructors (Line, Ring,
// Mesh, Torus, Star, PaperSix).
type Topology struct {
	name        string
	numSwitches int
	links       []LinkSpec
	endpoints   []EndpointSpec

	// router is the routing recipe the topology's generator attached
	// (nil = generic shortest-path routing).
	router Router
	// terminals lists where endpoints should attach, one entry per
	// terminal slot (nil = one slot per switch).
	terminals []NodeID

	// Port-list and endpoint caches. Platform compilation and routing
	// validation call SwitchInputs/SwitchOutputs/Endpoint inside loops
	// over switches × sinks; recomputing them by scanning every link
	// each call turns a 1k-switch build into minutes. The caches are
	// built lazily on first read and invalidated by any mutation
	// (AddLink, AddSource, AddSink).
	inCache  [][]InConn
	outCache [][]OutConn
	epCache  map[flit.EndpointID]EndpointSpec
}

// SetRouter attaches the topology's routing recipe. Generators call it
// once links are final; routing.BuildTable consumes it (nil keeps the
// generic shortest-path fallback).
func (t *Topology) SetRouter(r Router) { t.router = r }

// Router returns the attached routing recipe, or nil.
func (t *Topology) Router() Router { return t.router }

// SetTerminals records where endpoint pairs should attach, one entry
// per terminal slot; a switch may appear multiple times (a fat-tree
// edge switch hosts several endpoints).
func (t *Topology) SetTerminals(ts []NodeID) { t.terminals = ts }

// Terminals returns the endpoint attachment slots: the generator's
// list, or (by default) every switch once in identifier order. Callers
// must not mutate the result.
func (t *Topology) Terminals() []NodeID {
	if t.terminals != nil {
		return t.terminals
	}
	ts := make([]NodeID, t.numSwitches)
	for i := range ts {
		ts[i] = NodeID(i)
	}
	return ts
}

// invalidate drops the derived caches after a mutation.
func (t *Topology) invalidate() {
	t.inCache, t.outCache, t.epCache = nil, nil, nil
}

// buildPortCaches fills the per-switch canonical port lists in one pass
// over the links and endpoints.
func (t *Topology) buildPortCaches() {
	t.inCache = make([][]InConn, t.numSwitches)
	t.outCache = make([][]OutConn, t.numSwitches)
	for i, l := range t.links {
		t.inCache[l.To] = append(t.inCache[l.To], InConn{Link: i})
		t.outCache[l.From] = append(t.outCache[l.From], OutConn{Link: i})
	}
	for _, e := range t.endpoints {
		switch e.Role {
		case Source:
			t.inCache[e.Switch] = append(t.inCache[e.Switch], InConn{Link: -1, Endpoint: e.ID})
		case Sink:
			t.outCache[e.Switch] = append(t.outCache[e.Switch], OutConn{Link: -1, Endpoint: e.ID})
		}
	}
}

// New returns an empty topology over n switches.
func New(name string, n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology %s: %d switches", name, n)
	}
	return &Topology{name: name, numSwitches: n}, nil
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return t.numSwitches }

// Links returns the link list; the index of a link in this slice is its
// stable identifier.
func (t *Topology) Links() []LinkSpec { return t.links }

// Endpoints returns all endpoint attachments.
func (t *Topology) Endpoints() []EndpointSpec { return t.endpoints }

func (t *Topology) checkNode(s NodeID) error {
	if s < 0 || int(s) >= t.numSwitches {
		return fmt.Errorf("topology %s: switch %d out of range [0,%d)", t.name, s, t.numSwitches)
	}
	return nil
}

// AddLink adds a unidirectional link. Self-loops and duplicate links are
// rejected.
func (t *Topology) AddLink(from, to NodeID) error {
	if err := t.checkNode(from); err != nil {
		return err
	}
	if err := t.checkNode(to); err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("topology %s: self-loop at switch %d", t.name, from)
	}
	for _, l := range t.links {
		if l.From == from && l.To == to {
			return fmt.Errorf("topology %s: duplicate link %d->%d", t.name, from, to)
		}
	}
	t.links = append(t.links, LinkSpec{From: from, To: to})
	t.invalidate()
	return nil
}

// AddBiLink adds links in both directions.
func (t *Topology) AddBiLink(a, b NodeID) error {
	if err := t.AddLink(a, b); err != nil {
		return err
	}
	return t.AddLink(b, a)
}

func (t *Topology) addEndpoint(id flit.EndpointID, sw NodeID, role Role) error {
	if err := t.checkNode(sw); err != nil {
		return err
	}
	for _, e := range t.endpoints {
		if e.ID == id {
			return fmt.Errorf("topology %s: duplicate endpoint %d", t.name, id)
		}
	}
	t.endpoints = append(t.endpoints, EndpointSpec{ID: id, Switch: sw, Role: role})
	t.invalidate()
	return nil
}

// AddSource attaches a traffic-generator endpoint to a switch.
func (t *Topology) AddSource(id flit.EndpointID, sw NodeID) error {
	return t.addEndpoint(id, sw, Source)
}

// AddSink attaches a traffic-receptor endpoint to a switch.
func (t *Topology) AddSink(id flit.EndpointID, sw NodeID) error {
	return t.addEndpoint(id, sw, Sink)
}

// Endpoint returns the attachment of the given endpoint.
func (t *Topology) Endpoint(id flit.EndpointID) (EndpointSpec, bool) {
	if t.epCache == nil {
		t.epCache = make(map[flit.EndpointID]EndpointSpec, len(t.endpoints))
		for _, e := range t.endpoints {
			t.epCache[e.ID] = e
		}
	}
	e, ok := t.epCache[id]
	return e, ok
}

// Sources returns the source endpoints in attachment order.
func (t *Topology) Sources() []EndpointSpec { return t.byRole(Source) }

// Sinks returns the sink endpoints in attachment order.
func (t *Topology) Sinks() []EndpointSpec { return t.byRole(Sink) }

func (t *Topology) byRole(r Role) []EndpointSpec {
	var out []EndpointSpec
	for _, e := range t.endpoints {
		if e.Role == r {
			out = append(out, e)
		}
	}
	return out
}

// SwitchInputs returns the input ports of switch s in canonical order:
// link-fed ports first (by link index), then local sources (by
// attachment order). The slice index is the input port number. The
// returned slice is cached; callers must not mutate it.
func (t *Topology) SwitchInputs(s NodeID) []InConn {
	if t.inCache == nil {
		t.buildPortCaches()
	}
	return t.inCache[s]
}

// SwitchOutputs returns the output ports of switch s in canonical
// order: link-driven ports first, then local sinks. The slice index is
// the output port number. The returned slice is cached; callers must
// not mutate it.
func (t *Topology) SwitchOutputs(s NodeID) []OutConn {
	if t.outCache == nil {
		t.buildPortCaches()
	}
	return t.outCache[s]
}

// Adjacency returns, for each switch, the list of (link index, neighbor)
// pairs of its outgoing links.
func (t *Topology) Adjacency() [][]Edge {
	adj := make([][]Edge, t.numSwitches)
	for i, l := range t.links {
		adj[l.From] = append(adj[l.From], Edge{Link: i, To: l.To})
	}
	return adj
}

// Edge is one outgoing link in an adjacency list.
type Edge struct {
	Link int
	To   NodeID
}

// Reachable returns the set of switches reachable from s (including s).
func (t *Topology) Reachable(s NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{s: true}
	queue := []NodeID{s}
	adj := t.Adjacency()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// Validate checks the structural invariants needed before platform
// compilation: at least one source and one sink, every source able to
// reach every sink's switch, and no switch with zero ports.
func (t *Topology) Validate() error {
	srcs, sinks := t.Sources(), t.Sinks()
	if len(srcs) == 0 {
		return fmt.Errorf("topology %s: no sources", t.name)
	}
	if len(sinks) == 0 {
		return fmt.Errorf("topology %s: no sinks", t.name)
	}
	for _, src := range srcs {
		reach := t.Reachable(src.Switch)
		for _, snk := range sinks {
			if !reach[snk.Switch] {
				return fmt.Errorf("topology %s: sink %d (switch %d) unreachable from source %d (switch %d)",
					t.name, snk.ID, snk.Switch, src.ID, src.Switch)
			}
		}
	}
	for s := NodeID(0); int(s) < t.numSwitches; s++ {
		if len(t.SwitchInputs(s)) == 0 && len(t.SwitchOutputs(s)) == 0 {
			return fmt.Errorf("topology %s: switch %d has no ports", t.name, s)
		}
	}
	return nil
}
