package topology

import (
	"testing"
	"testing/quick"

	"nocemu/internal/flit"
)

func TestNewValidates(t *testing.T) {
	if _, err := New("t", 0); err == nil {
		t.Error("0 switches accepted")
	}
	tp, err := New("t", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumSwitches() != 3 || tp.Name() != "t" {
		t.Errorf("n=%d name=%q", tp.NumSwitches(), tp.Name())
	}
}

func TestAddLinkErrors(t *testing.T) {
	tp, _ := New("t", 3)
	if err := tp.AddLink(0, 3); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := tp.AddLink(-1, 0); err == nil {
		t.Error("negative source accepted")
	}
	if err := tp.AddLink(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := tp.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(0, 1); err == nil {
		t.Error("duplicate link accepted")
	}
	// Reverse direction is a distinct link.
	if err := tp.AddLink(1, 0); err != nil {
		t.Errorf("reverse link rejected: %v", err)
	}
}

func TestEndpointAttachment(t *testing.T) {
	tp, _ := New("t", 2)
	if err := tp.AddSource(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSink(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSource(1, 1); err == nil {
		t.Error("duplicate endpoint id accepted")
	}
	if err := tp.AddSink(3, 9); err == nil {
		t.Error("endpoint on missing switch accepted")
	}
	e, ok := tp.Endpoint(1)
	if !ok || e.Switch != 0 || e.Role != Source {
		t.Errorf("endpoint lookup: %+v ok=%v", e, ok)
	}
	if _, ok := tp.Endpoint(99); ok {
		t.Error("missing endpoint found")
	}
	if len(tp.Sources()) != 1 || len(tp.Sinks()) != 1 {
		t.Error("role filters wrong")
	}
}

func TestPortOrdering(t *testing.T) {
	tp, _ := New("t", 3)
	// Links into switch 1 from 0 and 2, plus a local source.
	if err := tp.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSource(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSink(8, 1); err != nil {
		t.Fatal(err)
	}
	in := tp.SwitchInputs(1)
	if len(in) != 3 {
		t.Fatalf("inputs = %v", in)
	}
	if in[0].Link != 0 || in[1].Link != 1 {
		t.Errorf("link-fed inputs not first: %v", in)
	}
	if in[2].Link != -1 || in[2].Endpoint != 7 {
		t.Errorf("local source port wrong: %v", in[2])
	}
	out := tp.SwitchOutputs(1)
	if len(out) != 2 {
		t.Fatalf("outputs = %v", out)
	}
	if out[0].Link != 2 {
		t.Errorf("link-driven output not first: %v", out)
	}
	if out[1].Link != -1 || out[1].Endpoint != 8 {
		t.Errorf("local sink port wrong: %v", out[1])
	}
}

func TestRoleString(t *testing.T) {
	if Source.String() != "source" || Sink.String() != "sink" {
		t.Error("role strings wrong")
	}
	if Role(9).String() != "role(9)" {
		t.Errorf("unknown role = %q", Role(9).String())
	}
}

func TestReachable(t *testing.T) {
	tp, _ := New("t", 4)
	if err := tp.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	// Switch 3 is isolated.
	r := tp.Reachable(0)
	if !r[0] || !r[1] || !r[2] || r[3] {
		t.Errorf("reachable = %v", r)
	}
}

func TestValidateCatchesUnreachableSink(t *testing.T) {
	tp, _ := New("t", 2)
	if err := tp.AddSource(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSink(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err == nil {
		t.Error("unreachable sink accepted")
	}
	if err := tp.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestValidateRequiresEndpoints(t *testing.T) {
	tp, _ := New("t", 2)
	if err := tp.Validate(); err == nil {
		t.Error("no-source topology accepted")
	}
	if err := tp.AddSource(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err == nil {
		t.Error("no-sink topology accepted")
	}
}

func TestLine(t *testing.T) {
	tp, err := Line(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Links()) != 6 {
		t.Errorf("links = %d, want 6", len(tp.Links()))
	}
	r := tp.Reachable(0)
	for i := NodeID(0); i < 4; i++ {
		if !r[i] {
			t.Errorf("switch %d unreachable", i)
		}
	}
}

func TestRing(t *testing.T) {
	if _, err := Ring(2); err == nil {
		t.Error("ring of 2 accepted")
	}
	tp, err := Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Links()) != 10 {
		t.Errorf("links = %d, want 10", len(tp.Links()))
	}
	for s := NodeID(0); s < 5; s++ {
		if got := len(tp.SwitchInputs(s)); got != 2 {
			t.Errorf("switch %d inputs = %d", s, got)
		}
	}
}

func TestMeshDegrees(t *testing.T) {
	if _, err := Mesh(0, 2); err == nil {
		t.Error("mesh 0x2 accepted")
	}
	tp, err := Mesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2*(w*(h-1) + h*(w-1)) = 2*(6+6) = 24 unidirectional links.
	if len(tp.Links()) != 24 {
		t.Errorf("links = %d, want 24", len(tp.Links()))
	}
	// Corner has 2 outs, edge 3, center 4.
	if got := len(tp.SwitchOutputs(0)); got != 2 {
		t.Errorf("corner outputs = %d", got)
	}
	if got := len(tp.SwitchOutputs(1)); got != 3 {
		t.Errorf("edge outputs = %d", got)
	}
	if got := len(tp.SwitchOutputs(4)); got != 4 {
		t.Errorf("center outputs = %d", got)
	}
	x, y := MeshXY(5, 3)
	if x != 2 || y != 1 {
		t.Errorf("MeshXY(5,3) = %d,%d", x, y)
	}
}

func TestTorusRegularDegree(t *testing.T) {
	if _, err := Torus(2, 3); err == nil {
		t.Error("torus 2x3 accepted")
	}
	tp, err := Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := NodeID(0); s < 9; s++ {
		if got := len(tp.SwitchOutputs(s)); got != 4 {
			t.Errorf("switch %d outputs = %d, want 4", s, got)
		}
	}
}

func TestStar(t *testing.T) {
	if _, err := Star(0); err == nil {
		t.Error("star of 0 accepted")
	}
	tp, err := Star(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tp.SwitchOutputs(0)); got != 4 {
		t.Errorf("hub outputs = %d", got)
	}
	if got := len(tp.SwitchOutputs(1)); got != 1 {
		t.Errorf("leaf outputs = %d", got)
	}
}

func TestPaperSix(t *testing.T) {
	tp, err := PaperSix()
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumSwitches() != 6 {
		t.Errorf("switches = %d", tp.NumSwitches())
	}
	if got := len(tp.Sources()); got != 4 {
		t.Errorf("sources = %d", got)
	}
	if got := len(tp.Sinks()); got != 4 {
		t.Errorf("sinks = %d", got)
	}
	if len(tp.Links()) != 16 {
		t.Errorf("links = %d, want 16", len(tp.Links()))
	}
	// Each source switch must reach each sink switch two ways: via S2
	// and via S3.
	adj := tp.Adjacency()
	for _, s := range []NodeID{0, 1} {
		var mids []NodeID
		for _, e := range adj[s] {
			if e.To == 2 || e.To == 3 {
				mids = append(mids, e.To)
			}
		}
		if len(mids) != 2 {
			t.Errorf("switch %d middle fanout = %v", s, mids)
		}
	}
	hotA, hotB, err := HotLinks(tp)
	if err != nil {
		t.Fatal(err)
	}
	ls := tp.Links()
	if ls[hotA].From != 2 || ls[hotA].To != 4 || ls[hotB].From != 3 || ls[hotB].To != 5 {
		t.Errorf("hot links wrong: %v %v", ls[hotA], ls[hotB])
	}
}

func TestHotLinksWrongTopology(t *testing.T) {
	tp, _ := Line(3)
	if _, _, err := HotLinks(tp); err == nil {
		t.Error("HotLinks on line topology succeeded")
	}
}

// Property: in any mesh, port counts match node degree plus endpoint
// attachments, and every switch reaches every other.
func TestMeshConnectivityProperty(t *testing.T) {
	f := func(wSeed, hSeed uint8) bool {
		w := int(wSeed%4) + 2
		h := int(hSeed%4) + 2
		tp, err := Mesh(w, h)
		if err != nil {
			return false
		}
		r := tp.Reachable(0)
		if len(r) != w*h {
			return false
		}
		// Attach one source and one sink; must validate.
		if err := tp.AddSource(flit.EndpointID(0), 0); err != nil {
			return false
		}
		if err := tp.AddSink(flit.EndpointID(1), NodeID(w*h-1)); err != nil {
			return false
		}
		return tp.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullyConnected(t *testing.T) {
	if _, err := FullyConnected(1); err == nil {
		t.Error("n=1 accepted")
	}
	tp, err := FullyConnected(4)
	if err != nil {
		t.Fatal(err)
	}
	// n*(n-1) unidirectional links.
	if len(tp.Links()) != 12 {
		t.Errorf("links = %d, want 12", len(tp.Links()))
	}
	for s := NodeID(0); s < 4; s++ {
		if got := len(tp.SwitchOutputs(s)); got != 3 {
			t.Errorf("switch %d degree = %d", s, got)
		}
	}
}

func TestTreeShape(t *testing.T) {
	if _, err := Tree(0, 2); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := Tree(1, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	tp, err := Tree(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 4 = 7 switches; 6 bidirectional links.
	if tp.NumSwitches() != 7 {
		t.Errorf("switches = %d", tp.NumSwitches())
	}
	if len(tp.Links()) != 12 {
		t.Errorf("links = %d, want 12", len(tp.Links()))
	}
	// Root degree = fanout; internal = fanout+1; leaf = 1.
	if got := len(tp.SwitchOutputs(0)); got != 2 {
		t.Errorf("root degree = %d", got)
	}
	if got := len(tp.SwitchOutputs(1)); got != 3 {
		t.Errorf("internal degree = %d", got)
	}
	if got := len(tp.SwitchOutputs(6)); got != 1 {
		t.Errorf("leaf degree = %d", got)
	}
	leaves := TreeLeaves(2, 2)
	if len(leaves) != 4 || leaves[0] != 3 || leaves[3] != 6 {
		t.Errorf("leaves = %v", leaves)
	}
	// Leaves reach the root.
	r := tp.Reachable(leaves[0])
	if !r[0] {
		t.Error("root unreachable from leaf")
	}
}

func TestTreeAggregationPlatformValidates(t *testing.T) {
	tp, err := Tree(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, leaf := range TreeLeaves(2, 2) {
		if err := tp.AddSource(flit.EndpointID(i), leaf); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddSink(100, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("aggregation tree invalid: %v", err)
	}
}
