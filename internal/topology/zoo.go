package topology

import "fmt"

// The large-scale "zoo" topologies: high-radix shapes from the
// data-centre and HPC literature that stress the emulator at 1k+
// endpoints. Like the classic shapes they register generators; unlike
// them they also publish a Terminals list (fat-tree hosts live only on
// edge switches, dragonfly routers host several endpoints each) and a
// Router annotation, since generic shortest-path routing either
// deadlocks or wastes the path diversity these shapes exist for.
func init() {
	Register(Generator{
		Kind:    "butterfly",
		Summary: "flattened butterfly: w x h router grid, fully connected per row and per column",
		Params: []ParamDoc{
			{Name: "w", Default: 4, Doc: "router-grid width (>= 2)"},
			{Name: "h", Default: 4, Doc: "router-grid height (>= 2)"},
		},
		RoutingDoc: "dimension-ordered, one direct hop per dimension",
		Notes:      "deadlock-free: x-then-y over direct links admits no dependency cycle; 32x32 = 1024 terminals",
		Example:    Spec{Kind: "butterfly", Param: map[string]int{"w": 4, "h": 4}},
		Build: func(p Params) (*Topology, error) {
			return buildFlatButterfly(p.Get("w"), p.Get("h"))
		},
	})
	Register(Generator{
		Kind:    "fattree",
		Summary: "k-ary fat-tree (three-layer folded Clos): k pods, k^3/4 hosts",
		Params: []ParamDoc{
			{Name: "k", Default: 4, Doc: "switch arity (even, >= 2); k/2 hosts per edge switch"},
		},
		RoutingDoc: "up*/down* multipath: spread over all upward ports, unique downward path",
		Notes:      "deadlock-free: ascending and descending channels are disjoint; k=16 = 1024 hosts",
		Example:    Spec{Kind: "fattree", Param: map[string]int{"k": 4}},
		Build:      func(p Params) (*Topology, error) { return buildFatTree(p.Get("k")) },
	})
	Register(Generator{
		Kind:    "dragonfly",
		Summary: "dragonfly: a fully connected routers per group, h global links per router, g = a*h+1 groups",
		Params: []ParamDoc{
			{Name: "p", Default: 2, Doc: "terminals per router"},
			{Name: "a", Default: 4, Doc: "routers per group (>= 2)"},
			{Name: "h", Default: 2, Doc: "global links per router"},
		},
		RoutingDoc: "generic up*/down* over a BFS ranking (minimal local-global-local routing deadlocks without VCs)",
		Notes:      "deadlock-free via up*/down*; p=4,a=8,h=4 = 33 groups, 264 routers, 1056 terminals",
		Example:    Spec{Kind: "dragonfly", Param: map[string]int{"p": 2, "a": 4, "h": 2}},
		Build: func(p Params) (*Topology, error) {
			return buildDragonfly(p.Get("p"), p.Get("a"), p.Get("h"))
		},
	})
}

// buildFlatButterfly builds the flattened butterfly (generalized
// hypercube): routers on a w x h grid, each fully connected to every
// router sharing its row and every router sharing its column.
func buildFlatButterfly(w, h int) (*Topology, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("topology: butterfly %dx%d needs both dims >= 2", w, h)
	}
	t, err := New(fmt.Sprintf("butterfly-%dx%d", w, h), w*h)
	if err != nil {
		return nil, err
	}
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for i := 0; i < w; i++ {
			for j := i + 1; j < w; j++ {
				if err := t.AddBiLink(id(i, y), id(j, y)); err != nil {
					return nil, err
				}
			}
		}
	}
	for x := 0; x < w; x++ {
		for i := 0; i < h; i++ {
			for j := i + 1; j < h; j++ {
				if err := t.AddBiLink(id(x, i), id(x, j)); err != nil {
					return nil, err
				}
			}
		}
	}
	t.SetRouter(FlatFlyRouter{W: w, H: h})
	return t, nil
}

// buildFatTree builds the k-ary fat-tree with FatTreeRouter's switch
// numbering: edge(p,i) = p*half+i, agg(p,j) = k²/2 + p*half+j,
// core(x,y) = k² + x*half+y, where core column x attaches to
// aggregation switch x of every pod. Hosts attach only to edge
// switches, k/2 per switch (k³/4 total).
func buildFatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fattree k=%d needs an even k >= 2", k)
	}
	half := k / 2
	edgeN := k * half // also the number of aggregation switches
	total := 2*edgeN + half*half
	t, err := New(fmt.Sprintf("fattree-%d", k), total)
	if err != nil {
		return nil, err
	}
	edge := func(p, i int) NodeID { return NodeID(p*half + i) }
	agg := func(p, j int) NodeID { return NodeID(edgeN + p*half + j) }
	core := func(x, y int) NodeID { return NodeID(2*edgeN + x*half + y) }
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				if err := t.AddBiLink(edge(p, i), agg(p, j)); err != nil {
					return nil, err
				}
			}
		}
	}
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			for y := 0; y < half; y++ {
				if err := t.AddBiLink(agg(p, j), core(j, y)); err != nil {
					return nil, err
				}
			}
		}
	}
	terms := make([]NodeID, 0, edgeN*half)
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for c := 0; c < half; c++ {
				terms = append(terms, edge(p, i))
			}
		}
	}
	t.SetTerminals(terms)
	t.SetRouter(FatTreeRouter{K: k})
	return t, nil
}

// buildDragonfly builds the canonical dragonfly: groups of a fully
// connected routers, h global links per router, and the balanced group
// count g = a*h+1 so exactly one global link joins every group pair.
// Group G's q-th global port (on router q/h) reaches group
// (G+q+1) mod g; the return port in that group is g-q-2, which the
// same rule maps back to G.
func buildDragonfly(p, a, h int) (*Topology, error) {
	if p < 1 || a < 2 || h < 1 {
		return nil, fmt.Errorf("topology: dragonfly p=%d a=%d h=%d needs p >= 1, a >= 2, h >= 1", p, a, h)
	}
	g := a*h + 1
	t, err := New(fmt.Sprintf("dragonfly-%dx%dx%d", p, a, h), g*a)
	if err != nil {
		return nil, err
	}
	router := func(grp, r int) NodeID { return NodeID(grp*a + r) }
	for grp := 0; grp < g; grp++ {
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				if err := t.AddBiLink(router(grp, i), router(grp, j)); err != nil {
					return nil, err
				}
			}
		}
	}
	for grp := 0; grp < g; grp++ {
		for q := 0; q < a*h; q++ {
			tgt := (grp + q + 1) % g
			if tgt < grp {
				continue // the lower-numbered group adds the pair
			}
			back := g - q - 2
			if err := t.AddBiLink(router(grp, q/h), router(tgt, back/h)); err != nil {
				return nil, err
			}
		}
	}
	terms := make([]NodeID, 0, g*a*p)
	for grp := 0; grp < g; grp++ {
		for r := 0; r < a; r++ {
			for c := 0; c < p; c++ {
				terms = append(terms, router(grp, r))
			}
		}
	}
	t.SetTerminals(terms)
	t.SetRouter(&UpDownRouter{})
	return t, nil
}
