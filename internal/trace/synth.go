package trace

import (
	"fmt"

	"nocemu/internal/flit"
)

// BurstConfig describes a synthetic burst-structured application trace:
// bursts of PacketsPerBurst back-to-back packets of FlitsPerPacket flits
// each, separated by idle gaps sized to hit Load (average flits/cycle).
// This is the workload shape of the paper's figures: congestion and
// latency versus "number of packets per burst" for several "flits per
// packet".
type BurstConfig struct {
	Name            string
	Dst             flit.EndpointID
	NumBursts       int
	PacketsPerBurst int
	FlitsPerPacket  int
	// Load is the average offered load in flits/cycle (0 < Load <= 1);
	// the paper's setup uses 0.45.
	Load float64
	// StartCycle offsets the first burst.
	StartCycle uint64
}

// SynthBurst builds a burst trace. Within a burst, packet k starts
// FlitsPerPacket cycles after packet k-1 (back-to-back serialization);
// the gap after each burst stretches the average rate to Load.
func SynthBurst(cfg BurstConfig) (*Trace, error) {
	if cfg.NumBursts < 1 || cfg.PacketsPerBurst < 1 || cfg.FlitsPerPacket < 1 {
		return nil, fmt.Errorf("trace: bad burst shape %d/%d/%d",
			cfg.NumBursts, cfg.PacketsPerBurst, cfg.FlitsPerPacket)
	}
	if cfg.FlitsPerPacket > 0xFFFF {
		return nil, fmt.Errorf("trace: %d flits/packet overflows", cfg.FlitsPerPacket)
	}
	if cfg.Load <= 0 || cfg.Load > 1 {
		return nil, fmt.Errorf("trace: load %v out of (0,1]", cfg.Load)
	}
	burstFlits := cfg.PacketsPerBurst * cfg.FlitsPerPacket
	// Burst occupies burstFlits cycles; a period of burstFlits/Load
	// cycles gives the requested average rate.
	period := uint64(float64(burstFlits) / cfg.Load)
	if period < uint64(burstFlits) {
		period = uint64(burstFlits)
	}
	t := &Trace{Name: cfg.Name}
	cycle := cfg.StartCycle
	for b := 0; b < cfg.NumBursts; b++ {
		start := cycle
		for p := 0; p < cfg.PacketsPerBurst; p++ {
			t.Records = append(t.Records, Record{
				Cycle: start + uint64(p*cfg.FlitsPerPacket),
				Dst:   cfg.Dst,
				Len:   uint16(cfg.FlitsPerPacket),
			})
		}
		cycle = start + period
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// CBRConfig describes a constant-bit-rate trace: packets of Len flits
// every Period cycles.
type CBRConfig struct {
	Name       string
	Dst        flit.EndpointID
	NumPackets int
	Len        uint16
	Period     uint64
	StartCycle uint64
}

// SynthCBR builds a constant-bit-rate trace (Load = Len/Period).
func SynthCBR(cfg CBRConfig) (*Trace, error) {
	if cfg.NumPackets < 1 || cfg.Len < 1 {
		return nil, fmt.Errorf("trace: bad CBR shape %d packets of %d flits", cfg.NumPackets, cfg.Len)
	}
	if cfg.Period < uint64(cfg.Len) {
		return nil, fmt.Errorf("trace: period %d shorter than packet %d", cfg.Period, cfg.Len)
	}
	t := &Trace{Name: cfg.Name}
	for p := 0; p < cfg.NumPackets; p++ {
		t.Records = append(t.Records, Record{
			Cycle: cfg.StartCycle + uint64(p)*cfg.Period,
			Dst:   cfg.Dst,
			Len:   cfg.Len,
		})
	}
	return t, nil
}

// Merge interleaves traces by cycle into a single ordered trace (stable
// for equal cycles). Used to build one device's trace from several
// recorded flows.
func Merge(name string, traces ...*Trace) (*Trace, error) {
	out := &Trace{Name: name}
	idx := make([]int, len(traces))
	for {
		best := -1
		var bestCycle uint64
		for i, tr := range traces {
			if idx[i] >= len(tr.Records) {
				continue
			}
			c := tr.Records[idx[i]].Cycle
			if best == -1 || c < bestCycle {
				best, bestCycle = i, c
			}
		}
		if best == -1 {
			break
		}
		out.Records = append(out.Records, traces[best].Records[idx[best]])
		idx[best]++
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary describes a trace's aggregate shape — what nocgen prints and
// what lets a user sanity-check a recorded application trace before
// replaying it.
type Summary struct {
	Records     int
	TotalFlits  uint64
	Duration    uint64
	OfferedLoad float64
	// MinLen/MaxLen/MeanLen summarize packet lengths.
	MinLen, MaxLen uint16
	MeanLen        float64
	// MeanGap and Burstiness summarize inter-emission gaps: Burstiness
	// is the index of dispersion (variance/mean) of the gaps — 0 for
	// CBR, large for bursty traffic.
	MeanGap    float64
	Burstiness float64
	// Destinations counts distinct targets.
	Destinations int
}

// Summarize computes the trace summary.
func (t *Trace) Summarize() Summary {
	s := Summary{Records: len(t.Records)}
	if len(t.Records) == 0 {
		return s
	}
	s.TotalFlits = t.TotalFlits()
	s.Duration = t.Duration()
	s.OfferedLoad = t.OfferedLoad()
	s.MinLen = t.Records[0].Len
	dsts := map[uint16]bool{}
	var lenSum float64
	for _, r := range t.Records {
		if r.Len < s.MinLen {
			s.MinLen = r.Len
		}
		if r.Len > s.MaxLen {
			s.MaxLen = r.Len
		}
		lenSum += float64(r.Len)
		dsts[uint16(r.Dst)] = true
	}
	s.MeanLen = lenSum / float64(len(t.Records))
	s.Destinations = len(dsts)
	if len(t.Records) > 1 {
		var gapSum float64
		gaps := make([]float64, 0, len(t.Records)-1)
		for i := 1; i < len(t.Records); i++ {
			g := float64(t.Records[i].Cycle - t.Records[i-1].Cycle)
			gaps = append(gaps, g)
			gapSum += g
		}
		s.MeanGap = gapSum / float64(len(gaps))
		if s.MeanGap > 0 {
			var m2 float64
			for _, g := range gaps {
				d := g - s.MeanGap
				m2 += d * d
			}
			s.Burstiness = m2 / float64(len(gaps)) / s.MeanGap
		}
	}
	return s
}
