// Package trace implements the trace-driven side of the paper's traffic
// devices: the file format for traffic "recorded on a real-life
// application", readers/writers in text and binary form, and synthetic
// trace generators producing the burst-structured workloads the paper
// sweeps (number of packets per burst, number of flits per packet).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"nocemu/internal/flit"
)

// Record is one packet emission: at cycle Cycle, send a Len-flit packet
// to Dst.
type Record struct {
	Cycle uint64
	Dst   flit.EndpointID
	Len   uint16
}

// Trace is a named sequence of packet emissions for one traffic
// generator.
type Trace struct {
	Name    string
	Records []Record
}

// Validate checks the trace invariants: non-decreasing cycles and
// nonzero packet lengths.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("trace: nil")
	}
	var prev uint64
	for i, r := range t.Records {
		if r.Len == 0 {
			return fmt.Errorf("trace %s: record %d has zero length", t.Name, i)
		}
		if r.Cycle < prev {
			return fmt.Errorf("trace %s: record %d cycle %d < previous %d", t.Name, i, r.Cycle, prev)
		}
		prev = r.Cycle
	}
	return nil
}

// TotalFlits returns the sum of packet lengths.
func (t *Trace) TotalFlits() uint64 {
	var n uint64
	for _, r := range t.Records {
		n += uint64(r.Len)
	}
	return n
}

// Duration returns the cycle of the last emission (0 for an empty
// trace).
func (t *Trace) Duration() uint64 {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Cycle
}

// OfferedLoad returns the average flit rate over the trace duration
// (flits per cycle), the quantity the paper sets to 45% of link
// bandwidth.
func (t *Trace) OfferedLoad() float64 {
	d := t.Duration()
	if d == 0 {
		return 0
	}
	return float64(t.TotalFlits()) / float64(d)
}

const textHeader = "# nocemu-trace v1"

// Write emits the trace in the line-oriented text format:
//
//	# nocemu-trace v1
//	# name: <name>
//	<cycle> <dst> <len>
func Write(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, textHeader)
	fmt.Fprintf(bw, "# name: %s\n", t.Name)
	for _, r := range t.Records {
		fmt.Fprintf(bw, "%d %d %d\n", r.Cycle, r.Dst, r.Len)
	}
	return bw.Flush()
}

// Read parses the text format. Blank lines and additional # comments are
// ignored.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := &Trace{}
	first := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if first {
			if line != textHeader {
				return nil, fmt.Errorf("trace: bad header %q", line)
			}
			first = false
			continue
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# name:"); ok {
				t.Name = strings.TrimSpace(rest)
			}
			continue
		}
		var rec Record
		if _, err := fmt.Sscanf(line, "%d %d %d", &rec.Cycle, &rec.Dst, &rec.Len); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	if first {
		return nil, fmt.Errorf("trace: empty input")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// binMagic marks the binary trace format.
var binMagic = [4]byte{'N', 'T', 'R', 'C'}

const binVersion uint16 = 1

// WriteBinary emits the compact binary format (magic, version, name,
// count, fixed-width records, little endian).
func WriteBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, binVersion); err != nil {
		return err
	}
	name := []byte(t.Name)
	if len(name) > 0xFFFF {
		return fmt.Errorf("trace: name too long")
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Records))); err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := binary.Write(bw, binary.LittleEndian, r.Cycle); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(r.Dst)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, r.Len); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxRecords = 1 << 28 // 256M records ~ 3 GiB; guards corrupt counts
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	t := &Trace{Name: string(name), Records: make([]Record, count)}
	for i := range t.Records {
		var dst uint16
		if err := binary.Read(br, binary.LittleEndian, &t.Records[i].Cycle); err != nil {
			return nil, fmt.Errorf("trace: record %d: %v", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &dst); err != nil {
			return nil, fmt.Errorf("trace: record %d: %v", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &t.Records[i].Len); err != nil {
			return nil, fmt.Errorf("trace: record %d: %v", i, err)
		}
		t.Records[i].Dst = flit.EndpointID(dst)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
