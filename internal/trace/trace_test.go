package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nocemu/internal/flit"
)

func sample() *Trace {
	return &Trace{
		Name: "app0",
		Records: []Record{
			{Cycle: 0, Dst: 100, Len: 4},
			{Cycle: 10, Dst: 101, Len: 2},
			{Cycle: 10, Dst: 100, Len: 1},
			{Cycle: 25, Dst: 102, Len: 8},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	var nilTrace *Trace
	if err := nilTrace.Validate(); err == nil {
		t.Error("nil trace accepted")
	}
	bad := &Trace{Records: []Record{{Cycle: 5, Dst: 1, Len: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-length record accepted")
	}
	bad = &Trace{Records: []Record{{Cycle: 5, Dst: 1, Len: 1}, {Cycle: 4, Dst: 1, Len: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("decreasing cycles accepted")
	}
}

func TestDerivedQuantities(t *testing.T) {
	tr := sample()
	if tr.TotalFlits() != 15 {
		t.Errorf("flits = %d", tr.TotalFlits())
	}
	if tr.Duration() != 25 {
		t.Errorf("duration = %d", tr.Duration())
	}
	if got := tr.OfferedLoad(); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("load = %v, want 0.6", got)
	}
	empty := &Trace{}
	if empty.Duration() != 0 || empty.OfferedLoad() != 0 {
		t.Error("empty trace derived values nonzero")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: %v != %v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n1 2 3\n",
		"# nocemu-trace v1\nnot numbers\n",
		"# nocemu-trace v1\n5 1 0\n",        // zero length
		"# nocemu-trace v1\n5 1 1\n4 1 1\n", // decreasing
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# nocemu-trace v1\n# name: x\n\n# comment\n3 7 2\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "x" || len(tr.Records) != 1 || tr.Records[0].Dst != 7 {
		t.Errorf("parsed = %+v", tr)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d differs", i)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:3])); err == nil {
		t.Error("truncated magic accepted")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated records accepted")
	}
}

// Property: both formats round-trip arbitrary valid traces.
func TestFormatsRoundTripProperty(t *testing.T) {
	f := func(gaps []uint8, lens []uint8, name string) bool {
		if len(name) > 100 {
			name = name[:100]
		}
		tr := &Trace{Name: strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return '_'
			}
			return r
		}, name)}
		cycle := uint64(0)
		for i := range gaps {
			cycle += uint64(gaps[i])
			l := uint16(1)
			if i < len(lens) {
				l = uint16(lens[i]%32) + 1
			}
			tr.Records = append(tr.Records, Record{Cycle: cycle, Dst: flit.EndpointID(i % 7), Len: l})
		}
		var tb, bb bytes.Buffer
		if err := Write(&tb, tr); err != nil {
			return false
		}
		if err := WriteBinary(&bb, tr); err != nil {
			return false
		}
		t1, err := Read(&tb)
		if err != nil {
			return false
		}
		t2, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		if len(t1.Records) != len(tr.Records) || len(t2.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if t1.Records[i] != tr.Records[i] || t2.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynthBurstShape(t *testing.T) {
	tr, err := SynthBurst(BurstConfig{
		Name: "b", Dst: 100, NumBursts: 3, PacketsPerBurst: 4,
		FlitsPerPacket: 2, Load: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 12 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	// Burst flits = 8, load 0.5 -> period 16.
	if tr.Records[4].Cycle != 16 {
		t.Errorf("second burst starts at %d, want 16", tr.Records[4].Cycle)
	}
	// Within a burst, packets are back to back (2 cycles apart).
	if tr.Records[1].Cycle-tr.Records[0].Cycle != 2 {
		t.Errorf("intra-burst spacing = %d", tr.Records[1].Cycle-tr.Records[0].Cycle)
	}
	for _, r := range tr.Records {
		if r.Len != 2 || r.Dst != 100 {
			t.Errorf("record %+v", r)
		}
	}
}

func TestSynthBurstLoadApproximation(t *testing.T) {
	tr, err := SynthBurst(BurstConfig{
		Name: "b", Dst: 1, NumBursts: 50, PacketsPerBurst: 8,
		FlitsPerPacket: 4, Load: 0.45,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tr.OfferedLoad()
	if math.Abs(got-0.45) > 0.03 {
		t.Errorf("offered load = %v, want ~0.45", got)
	}
}

func TestSynthBurstValidation(t *testing.T) {
	bad := []BurstConfig{
		{NumBursts: 0, PacketsPerBurst: 1, FlitsPerPacket: 1, Load: 0.5},
		{NumBursts: 1, PacketsPerBurst: 0, FlitsPerPacket: 1, Load: 0.5},
		{NumBursts: 1, PacketsPerBurst: 1, FlitsPerPacket: 0, Load: 0.5},
		{NumBursts: 1, PacketsPerBurst: 1, FlitsPerPacket: 1, Load: 0},
		{NumBursts: 1, PacketsPerBurst: 1, FlitsPerPacket: 1, Load: 1.5},
		{NumBursts: 1, PacketsPerBurst: 1, FlitsPerPacket: 70000, Load: 0.5},
	}
	for i, cfg := range bad {
		if _, err := SynthBurst(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSynthCBR(t *testing.T) {
	tr, err := SynthCBR(CBRConfig{Name: "c", Dst: 5, NumPackets: 10, Len: 3, Period: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 10 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	if tr.Records[9].Cycle != 90 {
		t.Errorf("last cycle = %d", tr.Records[9].Cycle)
	}
	if math.Abs(tr.OfferedLoad()-3.0/9.0) > 0.05 {
		t.Errorf("load = %v", tr.OfferedLoad())
	}
	if _, err := SynthCBR(CBRConfig{NumPackets: 1, Len: 5, Period: 3}); err == nil {
		t.Error("period < len accepted")
	}
	if _, err := SynthCBR(CBRConfig{NumPackets: 0, Len: 1, Period: 3}); err == nil {
		t.Error("0 packets accepted")
	}
}

func TestMerge(t *testing.T) {
	a, _ := SynthCBR(CBRConfig{Name: "a", Dst: 1, NumPackets: 3, Len: 1, Period: 10})
	b, _ := SynthCBR(CBRConfig{Name: "b", Dst: 2, NumPackets: 3, Len: 1, Period: 7, StartCycle: 1})
	m, err := Merge("m", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 6 {
		t.Fatalf("records = %d", len(m.Records))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged invalid: %v", err)
	}
	// Cycles: a={0,10,20} b={1,8,15} -> 0,1,8,10,15,20.
	want := []uint64{0, 1, 8, 10, 15, 20}
	for i, r := range m.Records {
		if r.Cycle != want[i] {
			t.Errorf("record %d cycle = %d, want %d", i, r.Cycle, want[i])
		}
	}
}

func TestSummarize(t *testing.T) {
	empty := (&Trace{}).Summarize()
	if empty.Records != 0 || empty.MeanLen != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	// CBR: zero burstiness.
	cbr, err := SynthCBR(CBRConfig{Name: "c", Dst: 1, NumPackets: 20, Len: 3, Period: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := cbr.Summarize()
	if s.Records != 20 || s.MinLen != 3 || s.MaxLen != 3 || s.MeanLen != 3 {
		t.Errorf("cbr summary = %+v", s)
	}
	if s.Burstiness != 0 {
		t.Errorf("cbr burstiness = %v, want 0", s.Burstiness)
	}
	if s.MeanGap != 10 {
		t.Errorf("cbr mean gap = %v", s.MeanGap)
	}
	if s.Destinations != 1 {
		t.Errorf("destinations = %d", s.Destinations)
	}
	// Burst trace: strictly positive burstiness.
	b, err := SynthBurst(BurstConfig{
		Name: "b", Dst: 2, NumBursts: 10, PacketsPerBurst: 8,
		FlitsPerPacket: 4, Load: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sb := b.Summarize()
	if sb.Burstiness <= 1 {
		t.Errorf("burst trace burstiness = %v, want > 1", sb.Burstiness)
	}
	if sb.OfferedLoad <= 0.2 || sb.OfferedLoad >= 0.4 {
		t.Errorf("burst load = %v", sb.OfferedLoad)
	}
}
