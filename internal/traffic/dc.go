// Data-centre-flavoured traffic models (flow arrivals with heavy-tailed
// sizes, synchronized incast waves), after the patterns catalogued in
// "Traffic Generation for Benchmarking Data Centre Networks". They
// implement the same Generator/Parameterized/snapshot contracts as the
// paper's uniform/burst/poisson models.
package traffic

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/rng"
	"nocemu/internal/state"
)

// FlowConfig parameterizes the flow model: while idle, a new flow
// arrives each cycle with probability ArrivalQ16; a flow is a
// back-to-back train of packets to one destination, with the packet
// count drawn from a bounded Pareto (α = 1) over [SizeMin, SizeMax] —
// many mice, few elephants.
type FlowConfig struct {
	// ArrivalQ16 is the per-idle-cycle flow arrival probability (Q16).
	ArrivalQ16 uint16
	// SizeMin, SizeMax bound the flow size in packets.
	SizeMin, SizeMax uint32
	LenMin, LenMax   uint16
	Dst              DstConfig
}

// FlowGen is the flow-based arrival model.
type FlowGen struct {
	cfg       FlowConfig
	dst       *dstChooser
	remaining uint32 // packets left in the current flow
	flowDst   uint16 // destination of the current flow (flit.EndpointID)
	busy      uint64 // serialization countdown of the last packet
}

// NewFlowGen validates the configuration and builds the model.
func NewFlowGen(cfg FlowConfig) (*FlowGen, error) {
	if cfg.ArrivalQ16 == 0 {
		return nil, fmt.Errorf("traffic: flow arrival probability is zero")
	}
	if cfg.SizeMin < 1 || cfg.SizeMax < cfg.SizeMin {
		return nil, fmt.Errorf("traffic: flow size range [%d,%d]", cfg.SizeMin, cfg.SizeMax)
	}
	if err := checkLenRange(cfg.LenMin, cfg.LenMax); err != nil {
		return nil, err
	}
	dst, err := newDstChooser(cfg.Dst)
	if err != nil {
		return nil, err
	}
	return &FlowGen{cfg: cfg, dst: dst}, nil
}

// ModelName implements Generator.
func (f *FlowGen) ModelName() string { return "flow" }

// Exhausted implements Generator.
func (f *FlowGen) Exhausted() bool { return false }

// Reset implements Generator.
func (f *FlowGen) Reset() {
	f.remaining, f.flowDst, f.busy = 0, 0, 0
	f.dst.reset()
}

// drawFlowSize draws a bounded-Pareto (α = 1) flow size: with u
// uniform on [1, 65536], min/u is Pareto-tailed (P[size >= s] ∝ 1/s),
// clamped into [SizeMin, SizeMax].
func (f *FlowGen) drawFlowSize(r *rng.LFSR) uint32 {
	u := uint32(r.Intn(65536)) + 1
	size := f.cfg.SizeMin * 65536 / u
	if size < f.cfg.SizeMin {
		size = f.cfg.SizeMin
	}
	if size > f.cfg.SizeMax {
		size = f.cfg.SizeMax
	}
	return size
}

// Step implements Generator.
func (f *FlowGen) Step(cycle uint64, r *rng.LFSR, d *Demand) bool {
	if f.busy > 0 {
		f.busy--
		return false
	}
	if f.remaining == 0 {
		if !r.Bernoulli16(f.cfg.ArrivalQ16) {
			return false
		}
		f.remaining = f.drawFlowSize(r)
		f.flowDst = uint16(f.dst.next(r))
	}
	l := drawLen(r, f.cfg.LenMin, f.cfg.LenMax)
	f.busy = uint64(l) - 1
	f.remaining--
	*d = Demand{Dst: flit.EndpointID(f.flowDst), Len: l}
	return true
}

// Sleep implements Generator: only the serialization countdown is a
// guaranteed no-op; an idle model draws the arrival Bernoulli every
// step and cannot sleep.
func (f *FlowGen) Sleep(cycle uint64) (uint64, bool) { return f.busy, f.busy > 0 }

// SkipSteps implements Generator.
func (f *FlowGen) SkipSteps(n uint64) {
	if n > f.busy {
		n = f.busy
	}
	f.busy -= n
}

// ParamNames implements Parameterized for the flow model.
func (f *FlowGen) ParamNames() []string {
	return []string{"arrival_q16", "size_min", "size_max", "len_min", "len_max"}
}

// ReadParam implements Parameterized.
func (f *FlowGen) ReadParam(i uint32) (uint32, bool) {
	switch i {
	case 0:
		return uint32(f.cfg.ArrivalQ16), true
	case 1:
		return f.cfg.SizeMin, true
	case 2:
		return f.cfg.SizeMax, true
	case 3:
		return uint32(f.cfg.LenMin), true
	case 4:
		return uint32(f.cfg.LenMax), true
	}
	return 0, false
}

// WriteParam implements Parameterized.
func (f *FlowGen) WriteParam(i uint32, v uint32) bool {
	switch i {
	case 0:
		if v == 0 || v > 0xFFFF {
			return false
		}
		f.cfg.ArrivalQ16 = uint16(v)
	case 1:
		if v < 1 || v > f.cfg.SizeMax {
			return false
		}
		f.cfg.SizeMin = v
	case 2:
		if v < f.cfg.SizeMin {
			return false
		}
		f.cfg.SizeMax = v
	case 3:
		if v < 1 || v > 0xFFFF || uint16(v) > f.cfg.LenMax {
			return false
		}
		f.cfg.LenMin = uint16(v)
	case 4:
		if v > 0xFFFF || uint16(v) < f.cfg.LenMin {
			return false
		}
		f.cfg.LenMax = uint16(v)
	default:
		return false
	}
	return true
}

// SaveState implements Generator.
func (f *FlowGen) SaveState(w *state.Writer) {
	w.U16(f.cfg.ArrivalQ16)
	w.U32(f.cfg.SizeMin)
	w.U32(f.cfg.SizeMax)
	w.U16(f.cfg.LenMin)
	w.U16(f.cfg.LenMax)
	w.U32(f.remaining)
	w.U16(f.flowDst)
	w.U64(f.busy)
	f.dst.SaveState(w)
}

// LoadState implements Generator.
func (f *FlowGen) LoadState(r *state.Reader) error {
	arrival := r.U16()
	sizeMin, sizeMax := r.U32(), r.U32()
	lenMin, lenMax := r.U16(), r.U16()
	if err := r.Err(); err != nil {
		return err
	}
	if arrival == 0 {
		return fmt.Errorf("traffic: snapshot flow arrival probability is zero")
	}
	if sizeMin < 1 || sizeMax < sizeMin {
		return fmt.Errorf("traffic: snapshot flow size range [%d,%d]", sizeMin, sizeMax)
	}
	if err := checkLenRange(lenMin, lenMax); err != nil {
		return err
	}
	f.cfg.ArrivalQ16 = arrival
	f.cfg.SizeMin, f.cfg.SizeMax = sizeMin, sizeMax
	f.cfg.LenMin, f.cfg.LenMax = lenMin, lenMax
	f.remaining = r.U32()
	f.flowDst = r.U16()
	f.busy = r.U64()
	return f.dst.LoadState(r)
}

// IncastConfig parameterizes the incast model: every Epoch cycles a
// wave of PacketsPerWave packets is emitted back to back toward one
// destination drawn from the Dst policy. Generators sharing an Epoch,
// Offset and a lockstep destination rotation produce the many-to-one
// bursts that stress fan-in buffering.
type IncastConfig struct {
	// Epoch is the cycle period between wave starts (>= 1).
	Epoch uint64
	// PacketsPerWave is the packets emitted per wave (>= 1).
	PacketsPerWave uint32
	LenMin, LenMax uint16
	// Offset delays the first wave.
	Offset uint64
	Dst    DstConfig
}

// IncastGen is the synchronized-wave incast model.
type IncastGen struct {
	cfg       IncastConfig
	dst       *dstChooser
	remaining uint32 // packets left in the current wave
	waveDst   uint16 // destination of the current wave
	busy      uint64 // serialization countdown
	nextWave  uint64 // cycle of the next wave start
}

// NewIncastGen validates the configuration and builds the model.
func NewIncastGen(cfg IncastConfig) (*IncastGen, error) {
	if cfg.Epoch < 1 {
		return nil, fmt.Errorf("traffic: incast epoch %d", cfg.Epoch)
	}
	if cfg.PacketsPerWave < 1 {
		return nil, fmt.Errorf("traffic: incast wave of %d packets", cfg.PacketsPerWave)
	}
	if err := checkLenRange(cfg.LenMin, cfg.LenMax); err != nil {
		return nil, err
	}
	dst, err := newDstChooser(cfg.Dst)
	if err != nil {
		return nil, err
	}
	return &IncastGen{cfg: cfg, dst: dst, nextWave: cfg.Offset}, nil
}

// ModelName implements Generator.
func (g *IncastGen) ModelName() string { return "incast" }

// Exhausted implements Generator.
func (g *IncastGen) Exhausted() bool { return false }

// Reset implements Generator.
func (g *IncastGen) Reset() {
	g.remaining, g.waveDst, g.busy = 0, 0, 0
	g.nextWave = g.cfg.Offset
	g.dst.reset()
}

// Step implements Generator.
func (g *IncastGen) Step(cycle uint64, r *rng.LFSR, d *Demand) bool {
	if g.busy > 0 {
		g.busy--
		return false
	}
	if g.remaining == 0 {
		if cycle < g.nextWave {
			return false
		}
		// Monotone catch-up keeps wave starts deterministic even when
		// backpressure delays the tail of the previous wave past an
		// epoch boundary.
		for g.nextWave <= cycle {
			g.nextWave += g.cfg.Epoch
		}
		g.remaining = g.cfg.PacketsPerWave
		g.waveDst = uint16(g.dst.next(r))
	}
	l := drawLen(r, g.cfg.LenMin, g.cfg.LenMax)
	g.busy = uint64(l) - 1
	g.remaining--
	*d = Demand{Dst: flit.EndpointID(g.waveDst), Len: l}
	return true
}

// Sleep implements Generator: the serialization countdown and the wait
// for the next wave are both guaranteed no-ops.
func (g *IncastGen) Sleep(cycle uint64) (uint64, bool) {
	if g.busy > 0 {
		return g.busy, true
	}
	if g.remaining == 0 && cycle+1 < g.nextWave {
		return g.nextWave - cycle - 1, true
	}
	return 0, false
}

// SkipSteps implements Generator; waiting for a wave consumes no
// state, only the serialization countdown does.
func (g *IncastGen) SkipSteps(n uint64) {
	if g.busy == 0 {
		return
	}
	if n > g.busy {
		n = g.busy
	}
	g.busy -= n
}

// ParamNames implements Parameterized for the incast model (the epoch
// is construction-time configuration shared across the wave group).
func (g *IncastGen) ParamNames() []string {
	return []string{"packets_per_wave", "len_min", "len_max"}
}

// ReadParam implements Parameterized.
func (g *IncastGen) ReadParam(i uint32) (uint32, bool) {
	switch i {
	case 0:
		return g.cfg.PacketsPerWave, true
	case 1:
		return uint32(g.cfg.LenMin), true
	case 2:
		return uint32(g.cfg.LenMax), true
	}
	return 0, false
}

// WriteParam implements Parameterized.
func (g *IncastGen) WriteParam(i uint32, v uint32) bool {
	switch i {
	case 0:
		if v < 1 {
			return false
		}
		g.cfg.PacketsPerWave = v
	case 1:
		if v < 1 || v > 0xFFFF || uint16(v) > g.cfg.LenMax {
			return false
		}
		g.cfg.LenMin = uint16(v)
	case 2:
		if v > 0xFFFF || uint16(v) < g.cfg.LenMin {
			return false
		}
		g.cfg.LenMax = uint16(v)
	default:
		return false
	}
	return true
}

// SaveState implements Generator.
func (g *IncastGen) SaveState(w *state.Writer) {
	w.U32(g.cfg.PacketsPerWave)
	w.U16(g.cfg.LenMin)
	w.U16(g.cfg.LenMax)
	w.U32(g.remaining)
	w.U16(g.waveDst)
	w.U64(g.busy)
	w.U64(g.nextWave)
	g.dst.SaveState(w)
}

// LoadState implements Generator.
func (g *IncastGen) LoadState(r *state.Reader) error {
	ppw := r.U32()
	lenMin, lenMax := r.U16(), r.U16()
	if err := r.Err(); err != nil {
		return err
	}
	if ppw < 1 {
		return fmt.Errorf("traffic: snapshot incast wave of %d packets", ppw)
	}
	if err := checkLenRange(lenMin, lenMax); err != nil {
		return err
	}
	g.cfg.PacketsPerWave = ppw
	g.cfg.LenMin, g.cfg.LenMax = lenMin, lenMax
	g.remaining = r.U32()
	g.waveDst = r.U16()
	g.busy = r.U64()
	g.nextWave = r.U64()
	return g.dst.LoadState(r)
}
