package traffic

import (
	"testing"

	"nocemu/internal/flit"
	"nocemu/internal/rng"
	"nocemu/internal/state"
)

func TestFlowGenValidation(t *testing.T) {
	base := FlowConfig{
		ArrivalQ16: 2000, SizeMin: 1, SizeMax: 64,
		LenMin: 4, LenMax: 4, Dst: fixedDst(9),
	}
	if _, err := NewFlowGen(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.ArrivalQ16 = 0
	if _, err := NewFlowGen(bad); err == nil {
		t.Error("zero arrival probability accepted")
	}
	bad = base
	bad.SizeMin, bad.SizeMax = 8, 4
	if _, err := NewFlowGen(bad); err == nil {
		t.Error("inverted size range accepted")
	}
	bad = base
	bad.SizeMin = 0
	if _, err := NewFlowGen(bad); err == nil {
		t.Error("zero flow size accepted")
	}
}

// TestFlowGenTrains: every emitted packet belongs to a flow — a
// back-to-back train to a single destination with sizes inside the
// configured bounds, serialized at one packet per Len cycles.
func TestFlowGenTrains(t *testing.T) {
	g, err := NewFlowGen(FlowConfig{
		ArrivalQ16: 30000, SizeMin: 2, SizeMax: 8,
		LenMin: 3, LenMax: 3,
		Dst: DstConfig{Policy: DstUniform, Dsts: []flit.EndpointID{10, 11, 12}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	var emitted, flowPackets int
	var lastCycle uint64
	var flowDst flit.EndpointID
	for c := uint64(0); c < 5_000; c++ {
		inFlow := g.remaining > 0
		var d Demand
		if !g.Step(c, r, &d) {
			continue
		}
		if d.Len != 3 {
			t.Fatalf("cycle %d: packet length %d", c, d.Len)
		}
		if emitted > 0 && c-lastCycle < 3 {
			t.Fatalf("cycle %d: packet emitted %d cycles after the last (violates serialization)", c, c-lastCycle)
		}
		if inFlow {
			// Mid-flow packets continue the train: same destination,
			// back-to-back cadence.
			if d.Dst != flowDst {
				t.Fatalf("cycle %d: destination changed mid-flow (%d -> %d)", c, flowDst, d.Dst)
			}
			flowPackets++
			if flowPackets > 8 {
				t.Fatalf("cycle %d: flow exceeded SizeMax=8 packets", c)
			}
		} else {
			flowPackets = 1
			flowDst = d.Dst
		}
		emitted++
		lastCycle = c
	}
	if emitted < 100 {
		t.Fatalf("only %d packets in 5000 cycles at high arrival rate", emitted)
	}
}

// TestFlowSizesHeavyTailed: the bounded-Pareto draw concentrates on
// mice but still produces elephants at the cap.
func TestFlowSizesHeavyTailed(t *testing.T) {
	g, err := NewFlowGen(FlowConfig{
		ArrivalQ16: 65535, SizeMin: 1, SizeMax: 64,
		LenMin: 1, LenMax: 1, Dst: fixedDst(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	counts := map[uint32]int{}
	for i := 0; i < 4_000; i++ {
		counts[g.drawFlowSize(r)]++
	}
	if counts[1] < 1_000 {
		t.Errorf("mice underrepresented: %d size-1 flows of 4000", counts[1])
	}
	if counts[64] == 0 {
		t.Error("no elephant (size 64) flows in 4000 draws")
	}
	for size := range counts {
		if size < 1 || size > 64 {
			t.Errorf("size %d outside [1,64]", size)
		}
	}
}

func TestIncastGenValidation(t *testing.T) {
	base := IncastConfig{
		Epoch: 100, PacketsPerWave: 4,
		LenMin: 4, LenMax: 4, Dst: fixedDst(9),
	}
	if _, err := NewIncastGen(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Epoch = 0
	if _, err := NewIncastGen(bad); err == nil {
		t.Error("zero epoch accepted")
	}
	bad = base
	bad.PacketsPerWave = 0
	if _, err := NewIncastGen(bad); err == nil {
		t.Error("zero wave size accepted")
	}
}

// TestIncastWaves: waves of exactly PacketsPerWave packets start on
// epoch boundaries, all packets of one wave target one sink, and the
// round-robin rotation advances per wave.
func TestIncastWaves(t *testing.T) {
	g, err := NewIncastGen(IncastConfig{
		Epoch: 50, PacketsPerWave: 3, LenMin: 2, LenMax: 2,
		Dst: DstConfig{Policy: DstRoundRobin, Dsts: []flit.EndpointID{20, 21}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	demands, cycles := drive(g, r, 200)
	if len(demands) != 12 {
		t.Fatalf("%d packets in 4 epochs, want 12", len(demands))
	}
	for w := 0; w < 4; w++ {
		base := uint64(50 * w)
		if cycles[3*w] != base {
			t.Errorf("wave %d started at cycle %d, want %d", w, cycles[3*w], base)
		}
		want := flit.EndpointID(20 + w%2)
		for i := 3 * w; i < 3*w+3; i++ {
			if demands[i].Dst != want {
				t.Errorf("wave %d packet targets %d, want %d", w, demands[i].Dst, want)
			}
		}
	}
}

// TestIncastSleepIsLossless: sleeping through the idle stretch between
// waves must emit the same schedule as stepping every cycle.
func TestIncastSleepIsLossless(t *testing.T) {
	mk := func() *IncastGen {
		g, err := NewIncastGen(IncastConfig{
			Epoch: 40, PacketsPerWave: 2, LenMin: 2, LenMax: 2,
			Offset: 7, Dst: fixedDst(9),
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	stepped := mk()
	r1 := rng.New(4)
	wantD, wantC := drive(stepped, r1, 300)

	slept := mk()
	r2 := rng.New(4)
	var gotD []Demand
	var gotC []uint64
	for c := uint64(0); c < 300; {
		var d Demand
		if slept.Step(c, r2, &d) {
			gotD = append(gotD, d)
			gotC = append(gotC, c)
			c++
			continue
		}
		if n, ok := slept.Sleep(c); ok && n > 0 {
			slept.SkipSteps(n)
			c += n
			continue
		}
		c++
	}
	if len(gotD) != len(wantD) {
		t.Fatalf("slept run emitted %d packets, stepped %d", len(gotD), len(wantD))
	}
	for i := range wantD {
		if gotD[i] != wantD[i] || gotC[i] != wantC[i] {
			t.Fatalf("packet %d: slept (%v @%d) vs stepped (%v @%d)",
				i, gotD[i], gotC[i], wantD[i], wantC[i])
		}
	}
}

// TestDCGeneratorsSnapshotRoundTrip: mid-flow and mid-wave state
// survives SaveState/LoadState bit-exactly — the property the zoo
// restore-and-continue test relies on. The RNG is cloned through its
// own State(), mirroring how the platform snapshot carries both.
func TestDCGeneratorsSnapshotRoundTrip(t *testing.T) {
	flowCfg := FlowConfig{
		ArrivalQ16: 20000, SizeMin: 1, SizeMax: 16,
		LenMin: 4, LenMax: 4,
		Dst: DstConfig{Policy: DstUniform, Dsts: []flit.EndpointID{10, 11, 12}},
	}
	incastCfg := IncastConfig{
		Epoch: 30, PacketsPerWave: 5, LenMin: 3, LenMax: 3,
		Dst: DstConfig{Policy: DstRoundRobin, Dsts: []flit.EndpointID{20, 21, 22}},
	}
	cases := map[string]func() (Generator, error){
		"flow":   func() (Generator, error) { return NewFlowGen(flowCfg) },
		"incast": func() (Generator, error) { return NewIncastGen(incastCfg) },
	}
	for name, mk := range cases {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(9)
		drive(g, r, 101) // land mid-flow / mid-wave
		w := state.NewWriter()
		g.(interface{ SaveState(*state.Writer) }).SaveState(w)

		restored, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		rd := state.NewReader(w.Bytes())
		if err := restored.(interface{ LoadState(*state.Reader) error }).LoadState(rd); err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		r2 := rng.New(1)
		r2.Reseed(r.State())

		wantD, wantC := drive(g, r, 200)
		gotD, gotC := drive(restored, r2, 200)
		if len(gotD) != len(wantD) {
			t.Fatalf("%s: restored emitted %d packets, want %d", name, len(gotD), len(wantD))
		}
		for i := range wantD {
			if gotD[i] != wantD[i] || gotC[i] != wantC[i] {
				t.Fatalf("%s: packet %d diverged: %v@%d vs %v@%d",
					name, i, gotD[i], gotC[i], wantD[i], wantC[i])
			}
		}
	}
}
