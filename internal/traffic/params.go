package traffic

// Parameterized is implemented by generators whose model parameters are
// exposed as numbered 32-bit registers — the paper's "bench of
// registers for traffic parameterization". Register semantics are
// model-specific; ParamNames documents them in order.
type Parameterized interface {
	// ParamNames returns the register names, index-aligned.
	ParamNames() []string
	// ReadParam returns parameter i (false if out of range).
	ReadParam(i uint32) (uint32, bool)
	// WriteParam stores parameter i, rejecting values that would break
	// model invariants against the current values of the others.
	WriteParam(i uint32, v uint32) bool
}

// ParamNames implements Parameterized for the uniform model.
func (u *Uniform) ParamNames() []string {
	return []string{"len_min", "len_max", "gap_min", "gap_max"}
}

// ReadParam implements Parameterized.
func (u *Uniform) ReadParam(i uint32) (uint32, bool) {
	switch i {
	case 0:
		return uint32(u.cfg.LenMin), true
	case 1:
		return uint32(u.cfg.LenMax), true
	case 2:
		return u.cfg.GapMin, true
	case 3:
		return u.cfg.GapMax, true
	}
	return 0, false
}

// WriteParam implements Parameterized.
func (u *Uniform) WriteParam(i uint32, v uint32) bool {
	switch i {
	case 0:
		if v < 1 || v > 0xFFFF || uint16(v) > u.cfg.LenMax {
			return false
		}
		u.cfg.LenMin = uint16(v)
	case 1:
		if v > 0xFFFF || uint16(v) < u.cfg.LenMin {
			return false
		}
		u.cfg.LenMax = uint16(v)
	case 2:
		if v > u.cfg.GapMax {
			return false
		}
		u.cfg.GapMin = v
	case 3:
		if v < u.cfg.GapMin {
			return false
		}
		u.cfg.GapMax = v
	default:
		return false
	}
	return true
}

// ParamNames implements Parameterized for the burst model.
func (b *Burst) ParamNames() []string {
	return []string{"p_off_on", "p_on_off", "len_min", "len_max"}
}

// ReadParam implements Parameterized.
func (b *Burst) ReadParam(i uint32) (uint32, bool) {
	switch i {
	case 0:
		return uint32(b.cfg.POffOn), true
	case 1:
		return uint32(b.cfg.POnOff), true
	case 2:
		return uint32(b.cfg.LenMin), true
	case 3:
		return uint32(b.cfg.LenMax), true
	}
	return 0, false
}

// WriteParam implements Parameterized.
func (b *Burst) WriteParam(i uint32, v uint32) bool {
	switch i {
	case 0:
		if v == 0 || v > 0xFFFF {
			return false
		}
		b.cfg.POffOn = uint16(v)
	case 1:
		if v == 0 || v > 0xFFFF {
			return false
		}
		b.cfg.POnOff = uint16(v)
	case 2:
		if v < 1 || v > 0xFFFF || uint16(v) > b.cfg.LenMax {
			return false
		}
		b.cfg.LenMin = uint16(v)
	case 3:
		if v > 0xFFFF || uint16(v) < b.cfg.LenMin {
			return false
		}
		b.cfg.LenMax = uint16(v)
	default:
		return false
	}
	return true
}

// ParamNames implements Parameterized for the Poisson model.
func (p *Poisson) ParamNames() []string {
	return []string{"lambda", "len_min", "len_max"}
}

// ReadParam implements Parameterized.
func (p *Poisson) ReadParam(i uint32) (uint32, bool) {
	switch i {
	case 0:
		return uint32(p.cfg.Lambda), true
	case 1:
		return uint32(p.cfg.LenMin), true
	case 2:
		return uint32(p.cfg.LenMax), true
	}
	return 0, false
}

// WriteParam implements Parameterized.
func (p *Poisson) WriteParam(i uint32, v uint32) bool {
	switch i {
	case 0:
		if v == 0 || v > 0xFFFF {
			return false
		}
		p.cfg.Lambda = uint16(v)
	case 1:
		if v < 1 || v > 0xFFFF || uint16(v) > p.cfg.LenMax {
			return false
		}
		p.cfg.LenMin = uint16(v)
	case 2:
		if v > 0xFFFF || uint16(v) < p.cfg.LenMin {
			return false
		}
		p.cfg.LenMax = uint16(v)
	default:
		return false
	}
	return true
}

// ParamNames implements Parameterized for trace replay (read-only
// position information).
func (g *TraceGen) ParamNames() []string { return []string{"remaining"} }

// ReadParam implements Parameterized.
func (g *TraceGen) ReadParam(i uint32) (uint32, bool) {
	if i == 0 {
		return uint32(g.Remaining()), true
	}
	return 0, false
}

// WriteParam implements Parameterized; trace positions are not
// writable.
func (g *TraceGen) WriteParam(i uint32, v uint32) bool { return false }
