package traffic

import (
	"testing"

	"nocemu/internal/trace"
)

func TestUniformParams(t *testing.T) {
	g, err := NewUniform(UniformConfig{LenMin: 2, LenMax: 5, GapMin: 1, GapMax: 9, Dst: fixedDst(1)})
	if err != nil {
		t.Fatal(err)
	}
	names := g.ParamNames()
	if len(names) != 4 || names[0] != "len_min" || names[3] != "gap_max" {
		t.Errorf("names = %v", names)
	}
	want := []uint32{2, 5, 1, 9}
	for i, w := range want {
		if v, ok := g.ReadParam(uint32(i)); !ok || v != w {
			t.Errorf("param %d = %d,%v want %d", i, v, ok, w)
		}
	}
	if _, ok := g.ReadParam(4); ok {
		t.Error("out-of-range read succeeded")
	}
	// Valid writes.
	if !g.WriteParam(2, 3) || !g.WriteParam(3, 12) {
		t.Error("valid gap writes rejected")
	}
	if !g.WriteParam(1, 7) || !g.WriteParam(0, 6) {
		t.Error("valid len writes rejected")
	}
	// Invalid writes: each must leave state intact.
	bad := []struct{ i, v uint32 }{
		{0, 0},       // len_min 0
		{0, 8},       // above len_max
		{0, 0x10000}, // overflow
		{1, 5},       // below len_min (6)
		{1, 0x10000},
		{2, 13}, // gap_min above gap_max
		{3, 2},  // gap_max below gap_min
		{9, 1},  // unknown index
	}
	for _, c := range bad {
		if g.WriteParam(c.i, c.v) {
			t.Errorf("invalid write (%d,%d) accepted", c.i, c.v)
		}
	}
	if v, _ := g.ReadParam(0); v != 6 {
		t.Errorf("len_min mutated to %d", v)
	}
}

func TestBurstParams(t *testing.T) {
	g, err := NewBurst(BurstConfig{POffOn: 100, POnOff: 200, LenMin: 1, LenMax: 4, Dst: fixedDst(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ParamNames()) != 4 {
		t.Errorf("names = %v", g.ParamNames())
	}
	want := []uint32{100, 200, 1, 4}
	for i, w := range want {
		if v, ok := g.ReadParam(uint32(i)); !ok || v != w {
			t.Errorf("param %d = %d want %d", i, v, w)
		}
	}
	if !g.WriteParam(0, 500) || !g.WriteParam(1, 600) {
		t.Error("probability writes rejected")
	}
	if !g.WriteParam(3, 9) || !g.WriteParam(2, 2) {
		t.Error("length writes rejected")
	}
	bad := []struct{ i, v uint32 }{
		{0, 0}, {0, 0x10000},
		{1, 0}, {1, 0x10000},
		{2, 0}, {2, 10}, {2, 0x10000},
		{3, 1}, {3, 0x10000},
		{7, 1},
	}
	for _, c := range bad {
		if g.WriteParam(c.i, c.v) {
			t.Errorf("invalid write (%d,%d) accepted", c.i, c.v)
		}
	}
	if _, ok := g.ReadParam(4); ok {
		t.Error("out-of-range read succeeded")
	}
}

func TestPoissonParams(t *testing.T) {
	g, err := NewPoisson(PoissonConfig{Lambda: 300, LenMin: 2, LenMax: 6, Dst: fixedDst(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ParamNames()) != 3 || g.ParamNames()[0] != "lambda" {
		t.Errorf("names = %v", g.ParamNames())
	}
	want := []uint32{300, 2, 6}
	for i, w := range want {
		if v, ok := g.ReadParam(uint32(i)); !ok || v != w {
			t.Errorf("param %d = %d want %d", i, v, w)
		}
	}
	if !g.WriteParam(0, 1000) || !g.WriteParam(2, 8) || !g.WriteParam(1, 3) {
		t.Error("valid writes rejected")
	}
	bad := []struct{ i, v uint32 }{
		{0, 0}, {0, 0x10000},
		{1, 0}, {1, 9}, {1, 0x10000},
		{2, 2}, {2, 0x10000},
		{5, 1},
	}
	for _, c := range bad {
		if g.WriteParam(c.i, c.v) {
			t.Errorf("invalid write (%d,%d) accepted", c.i, c.v)
		}
	}
	if _, ok := g.ReadParam(3); ok {
		t.Error("out-of-range read succeeded")
	}
}

func TestTraceGenParams(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{Cycle: 0, Dst: 1, Len: 1},
		{Cycle: 1, Dst: 1, Len: 1},
	}}
	g, err := NewTraceGen(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ParamNames()) != 1 || g.ParamNames()[0] != "remaining" {
		t.Errorf("names = %v", g.ParamNames())
	}
	if v, ok := g.ReadParam(0); !ok || v != 2 {
		t.Errorf("remaining = %d,%v", v, ok)
	}
	if _, ok := g.ReadParam(1); ok {
		t.Error("out-of-range read succeeded")
	}
	if g.WriteParam(0, 5) {
		t.Error("trace position writable")
	}
}
