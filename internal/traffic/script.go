// ScriptGen: externally scripted traffic, the co-simulation injection
// path (DESIGN.md §16). A host driving the emulator as a timing oracle
// (cmd/nocserve) does not know its traffic ahead of time — packets
// arrive one request at a time. ScriptGen is a generator whose demand
// queue is appended between runs: each scripted record carries the
// cycle it becomes due, and Step emits due records in FIFO order.
//
// A ScriptGen may wrap an inner generator. Scripted records take
// priority; when none is due the inner model runs normally, which lets
// a session overlay request traffic on a registered background
// workload. Appends must happen only between kernel runs (the engine
// re-evaluates every parked component at each run entry, so a newly
// scripted demand needs no arm hook to wake its TG).
package traffic

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/rng"
	"nocemu/internal/state"
)

func init() {
	RegisterWorkload(Workload{
		Kind:    "script",
		Summary: "externally scripted: sources emit only demands appended at run time (co-simulation sessions)",
		Build: func(env WorkloadEnv) ([]EndpointTraffic, error) {
			if err := env.check(); err != nil {
				return nil, err
			}
			out := make([]EndpointTraffic, len(env.Sources))
			for i := range env.Sources {
				out[i] = EndpointTraffic{Model: "script"}
			}
			return out, nil
		},
	})
}

// scriptIdleSleep bounds the sleep promise of an empty pure-script
// generator. It is large enough to park the TG across any realistic
// request window but small enough that the owning TG's wake cycle
// (cycle + 1 + n) cannot overflow.
const scriptIdleSleep = uint64(1) << 40

// ScriptRec is one scripted packet demand: due at cycle At, sent to
// Dst with Len flits.
type ScriptRec struct {
	At      uint64
	Dst     flit.EndpointID
	Len     uint16
	Payload uint32
}

// ScriptGen emits an appendable FIFO of scripted demands, optionally
// overlaid on an inner generator.
type ScriptGen struct {
	inner Generator // nil for a pure script source
	queue []ScriptRec
	pos   int
}

// NewScript builds a script generator. inner may be nil (pure script).
func NewScript(inner Generator) *ScriptGen {
	return &ScriptGen{inner: inner}
}

// Append schedules one demand. Records must be appended in
// non-decreasing At order relative to the queue tail (FIFO emission
// would otherwise stall later records behind an undue earlier one).
func (s *ScriptGen) Append(rec ScriptRec) error {
	if rec.Len < 1 {
		return fmt.Errorf("traffic: scripted packet length %d", rec.Len)
	}
	if n := len(s.queue); n > s.pos && rec.At < s.queue[n-1].At {
		return fmt.Errorf("traffic: scripted record at cycle %d behind queued cycle %d",
			rec.At, s.queue[n-1].At)
	}
	s.queue = append(s.queue, rec)
	return nil
}

// Backlog reports the scripted demands not yet emitted.
func (s *ScriptGen) Backlog() int { return len(s.queue) - s.pos }

// Inner returns the wrapped generator (nil for a pure script source).
func (s *ScriptGen) Inner() Generator { return s.inner }

// ModelName implements Generator.
func (s *ScriptGen) ModelName() string {
	if s.inner != nil {
		return "script+" + s.inner.ModelName()
	}
	return "script"
}

// Exhausted implements Generator: a script source can always receive
// more records, so it never reports exhaustion.
func (s *ScriptGen) Exhausted() bool { return false }

// Reset implements Generator: rewind the script and the inner model.
func (s *ScriptGen) Reset() {
	s.pos = 0
	if s.inner != nil {
		s.inner.Reset()
	}
}

// Step implements Generator: emit the front scripted record once due,
// else delegate to the inner model.
func (s *ScriptGen) Step(cycle uint64, r *rng.LFSR, d *Demand) bool {
	if s.pos < len(s.queue) {
		rec := s.queue[s.pos]
		if rec.At <= cycle {
			s.pos++
			if s.pos == len(s.queue) {
				// The whole script has been emitted; drop the backing
				// array so long sessions do not accumulate it.
				s.queue, s.pos = s.queue[:0], 0
			}
			*d = Demand{Dst: rec.Dst, Len: rec.Len, Payload: rec.Payload}
			return true
		}
	}
	if s.inner != nil && !s.inner.Exhausted() {
		return s.inner.Step(cycle, r, d)
	}
	return false
}

// Sleep implements Generator: the script side is a pure wait until the
// front record is due (or indefinitely when empty); the combined
// promise is the minimum with the inner model's.
func (s *ScriptGen) Sleep(cycle uint64) (uint64, bool) {
	script := scriptIdleSleep
	if s.pos < len(s.queue) {
		at := s.queue[s.pos].At
		if at <= cycle+1 {
			return 0, false
		}
		script = at - cycle - 1
	}
	if s.inner == nil || s.inner.Exhausted() {
		return script, script > 0
	}
	n, ok := s.inner.Sleep(cycle)
	if !ok || n == 0 {
		return 0, false
	}
	if n < script {
		return n, true
	}
	return script, true
}

// SkipSteps implements Generator: waiting consumes no script state;
// only the inner model's countdowns advance.
func (s *ScriptGen) SkipSteps(n uint64) {
	if s.inner != nil {
		s.inner.SkipSteps(n)
	}
}

// SaveState implements Generator: the whole queue (appended records
// are session state — a parked session must resume with its pending
// script intact), the emission cursor, and the inner model.
func (s *ScriptGen) SaveState(w *state.Writer) {
	w.Int(len(s.queue))
	for _, rec := range s.queue {
		w.U64(rec.At)
		w.U16(uint16(rec.Dst))
		w.U16(rec.Len)
		w.U32(rec.Payload)
	}
	w.Int(s.pos)
	w.Bool(s.inner != nil)
	if s.inner != nil {
		s.inner.SaveState(w)
	}
}

// LoadState implements Generator.
func (s *ScriptGen) LoadState(r *state.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("traffic: snapshot script queue of %d records", n)
	}
	queue := make([]ScriptRec, 0, n)
	for i := 0; i < n; i++ {
		queue = append(queue, ScriptRec{
			At:      r.U64(),
			Dst:     flit.EndpointID(r.U16()),
			Len:     r.U16(),
			Payload: r.U32(),
		})
	}
	pos := r.Int()
	hasInner := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if pos < 0 || pos > n {
		return fmt.Errorf("traffic: snapshot script cursor %d of %d records", pos, n)
	}
	if hasInner != (s.inner != nil) {
		return fmt.Errorf("traffic: snapshot script inner-model %v, built %v", hasInner, s.inner != nil)
	}
	s.queue, s.pos = queue, pos
	if s.inner != nil {
		return s.inner.LoadState(r)
	}
	return nil
}
