package traffic

import (
	"testing"

	"nocemu/internal/flit"
	"nocemu/internal/rng"
	"nocemu/internal/state"
)

func TestScriptGenEmitsDueRecordsInOrder(t *testing.T) {
	g := NewScript(nil)
	if err := g.Append(ScriptRec{At: 5, Dst: 7, Len: 3, Payload: 42}); err != nil {
		t.Fatal(err)
	}
	if err := g.Append(ScriptRec{At: 5, Dst: 8, Len: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Append(ScriptRec{At: 9, Dst: 9, Len: 2}); err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	var d Demand
	for c := uint64(0); c < 5; c++ {
		if g.Step(c, r, &d) {
			t.Fatalf("cycle %d: emitted before due", c)
		}
	}
	if !g.Step(5, r, &d) || d.Dst != 7 || d.Len != 3 || d.Payload != 42 {
		t.Fatalf("cycle 5: got %+v", d)
	}
	// Same-cycle records come out on consecutive steps, FIFO.
	if !g.Step(6, r, &d) || d.Dst != 8 {
		t.Fatalf("second record: got %+v", d)
	}
	if g.Step(7, r, &d) {
		t.Fatal("cycle 7: record due at 9 emitted early")
	}
	if !g.Step(9, r, &d) || d.Dst != 9 {
		t.Fatalf("third record: got %+v", d)
	}
	if g.Backlog() != 0 {
		t.Fatalf("backlog %d after full emission", g.Backlog())
	}
	if g.Exhausted() {
		t.Fatal("script generators must never report exhaustion")
	}
}

func TestScriptGenRejectsOutOfOrderAppend(t *testing.T) {
	g := NewScript(nil)
	if err := g.Append(ScriptRec{At: 10, Dst: 1, Len: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Append(ScriptRec{At: 9, Dst: 1, Len: 1}); err == nil {
		t.Fatal("append behind the queue tail must fail")
	}
	if err := g.Append(ScriptRec{At: 10, Dst: 2, Len: 0}); err == nil {
		t.Fatal("zero-length record must fail")
	}
}

func TestScriptGenSleep(t *testing.T) {
	g := NewScript(nil)
	// Empty: a long bounded sleep, never an unbounded one (the TG adds
	// cycle+1+n, which must not overflow).
	n, ok := g.Sleep(100)
	if !ok || n != scriptIdleSleep {
		t.Fatalf("empty sleep = %d, %v", n, ok)
	}
	if err := g.Append(ScriptRec{At: 50, Dst: 1, Len: 1}); err != nil {
		t.Fatal(err)
	}
	if n, ok = g.Sleep(10); !ok || n != 39 {
		t.Fatalf("sleep to due cycle = %d, %v (want 39)", n, ok)
	}
	if _, ok = g.Sleep(49); ok {
		t.Fatal("must not sleep past the due cycle")
	}
}

func TestScriptGenWrapsInnerModel(t *testing.T) {
	inner, err := NewUniform(UniformConfig{
		LenMin: 2, LenMax: 2, GapMin: 0, GapMax: 0,
		Dst: DstConfig{Policy: DstFixed, Dsts: []flit.EndpointID{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewScript(inner)
	if g.ModelName() != "script+uniform" {
		t.Fatalf("model name %q", g.ModelName())
	}
	if err := g.Append(ScriptRec{At: 0, Dst: 9, Len: 5}); err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	var d Demand
	// The due scripted record outranks the inner model.
	if !g.Step(0, r, &d) || d.Dst != 9 || d.Len != 5 {
		t.Fatalf("script priority: got %+v", d)
	}
	// With the script drained the inner uniform model takes over.
	if !g.Step(1, r, &d) || d.Dst != 3 || d.Len != 2 {
		t.Fatalf("inner delegation: got %+v", d)
	}
	// Inner serialization countdown bounds the combined sleep.
	if n, ok := g.Sleep(1); !ok || n != 1 {
		t.Fatalf("combined sleep = %d, %v (want inner wait 1)", n, ok)
	}
}

func TestScriptGenSaveLoadRoundTrip(t *testing.T) {
	g := NewScript(nil)
	for _, rec := range []ScriptRec{
		{At: 3, Dst: 1, Len: 2, Payload: 7},
		{At: 8, Dst: 2, Len: 4},
		{At: 8, Dst: 3, Len: 1, Payload: 99},
	} {
		if err := g.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(1)
	var d Demand
	if !g.Step(3, r, &d) {
		t.Fatal("first record not emitted")
	}
	w := state.NewWriter()
	g.SaveState(w)

	restored := NewScript(nil)
	if err := restored.LoadState(state.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Backlog() != g.Backlog() {
		t.Fatalf("backlog %d != %d", restored.Backlog(), g.Backlog())
	}
	// Appends after restore continue the same stream.
	if err := restored.Append(ScriptRec{At: 12, Dst: 4, Len: 1}); err != nil {
		t.Fatal(err)
	}
	want := []ScriptRec{{At: 8, Dst: 2, Len: 4}, {At: 8, Dst: 3, Len: 1, Payload: 99}, {At: 12, Dst: 4, Len: 1}}
	for i, rec := range want {
		if !restored.Step(20, r, &d) || d.Dst != rec.Dst || d.Len != rec.Len || d.Payload != rec.Payload {
			t.Fatalf("restored record %d: got %+v want %+v", i, d, rec)
		}
	}

	// A snapshot of a pure script must not restore into a wrapped one.
	inner, err := NewUniform(UniformConfig{
		LenMin: 1, LenMax: 1, GapMin: 0, GapMax: 0,
		Dst: DstConfig{Policy: DstFixed, Dsts: []flit.EndpointID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := NewScript(inner).LoadState(state.NewReader(w.Bytes())); err == nil {
		t.Fatal("inner-model shape mismatch must fail")
	}
}
