// Snapshot support for the traffic-generator layer (DESIGN.md §13).
//
// Generators serialize two kinds of state: progress (countdowns, Markov
// state, trace position, destination rotation) and the parameter
// registers that software can rewrite at run time through WriteParam
// (packet-length bounds, gaps, probabilities). Construction-only
// configuration — destination sets, random phase, the trace itself — is
// not written. LoadState enforces the same invariants WriteParam does,
// so a corrupted snapshot cannot smuggle in a parameterization the
// register interface would have rejected.
package traffic

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/state"
)

// SaveState serializes the destination-rotation cursor.
func (d *dstChooser) SaveState(w *state.Writer) { w.Int(d.i) }

// LoadState restores the destination-rotation cursor.
func (d *dstChooser) LoadState(r *state.Reader) error {
	i := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if i < 0 || i >= len(d.cfg.Dsts) {
		return fmt.Errorf("traffic: destination cursor %d of %d", i, len(d.cfg.Dsts))
	}
	d.i = i
	return nil
}

// SaveState implements Generator.
func (u *Uniform) SaveState(w *state.Writer) {
	w.U16(u.cfg.LenMin)
	w.U16(u.cfg.LenMax)
	w.U32(u.cfg.GapMin)
	w.U32(u.cfg.GapMax)
	w.U64(u.wait)
	w.Bool(u.started)
	u.dst.SaveState(w)
}

// LoadState implements Generator.
func (u *Uniform) LoadState(r *state.Reader) error {
	lenMin, lenMax := r.U16(), r.U16()
	gapMin, gapMax := r.U32(), r.U32()
	if err := r.Err(); err != nil {
		return err
	}
	if err := checkLenRange(lenMin, lenMax); err != nil {
		return err
	}
	if gapMax < gapMin {
		return fmt.Errorf("traffic: snapshot gap range [%d,%d]", gapMin, gapMax)
	}
	u.cfg.LenMin, u.cfg.LenMax = lenMin, lenMax
	u.cfg.GapMin, u.cfg.GapMax = gapMin, gapMax
	u.wait = r.U64()
	u.started = r.Bool()
	return u.dst.LoadState(r)
}

// SaveState implements Generator.
func (b *Burst) SaveState(w *state.Writer) {
	w.U16(b.cfg.POffOn)
	w.U16(b.cfg.POnOff)
	w.U16(b.cfg.LenMin)
	w.U16(b.cfg.LenMax)
	w.Bool(b.on)
	w.U64(b.busy)
	b.dst.SaveState(w)
}

// LoadState implements Generator.
func (b *Burst) LoadState(r *state.Reader) error {
	pOffOn, pOnOff := r.U16(), r.U16()
	lenMin, lenMax := r.U16(), r.U16()
	if err := r.Err(); err != nil {
		return err
	}
	if pOffOn == 0 || pOnOff == 0 {
		return fmt.Errorf("traffic: snapshot burst probabilities %d/%d", pOffOn, pOnOff)
	}
	if err := checkLenRange(lenMin, lenMax); err != nil {
		return err
	}
	b.cfg.POffOn, b.cfg.POnOff = pOffOn, pOnOff
	b.cfg.LenMin, b.cfg.LenMax = lenMin, lenMax
	b.on = r.Bool()
	b.busy = r.U64()
	return b.dst.LoadState(r)
}

// SaveState implements Generator.
func (p *Poisson) SaveState(w *state.Writer) {
	w.U16(p.cfg.Lambda)
	w.U16(p.cfg.LenMin)
	w.U16(p.cfg.LenMax)
	p.dst.SaveState(w)
}

// LoadState implements Generator.
func (p *Poisson) LoadState(r *state.Reader) error {
	lambda := r.U16()
	lenMin, lenMax := r.U16(), r.U16()
	if err := r.Err(); err != nil {
		return err
	}
	if lambda == 0 {
		return fmt.Errorf("traffic: snapshot poisson lambda is zero")
	}
	if err := checkLenRange(lenMin, lenMax); err != nil {
		return err
	}
	p.cfg.Lambda = lambda
	p.cfg.LenMin, p.cfg.LenMax = lenMin, lenMax
	return p.dst.LoadState(r)
}

// SaveState implements Generator.
func (g *TraceGen) SaveState(w *state.Writer) { w.Int(g.idx) }

// LoadState implements Generator. The trace itself is configuration;
// only the replay position is state.
func (g *TraceGen) LoadState(r *state.Reader) error {
	idx := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if idx < 0 || idx > len(g.tr.Records) {
		return fmt.Errorf("traffic: snapshot trace position %d of %d records", idx, len(g.tr.Records))
	}
	g.idx = idx
	return nil
}

// SaveState serializes the whole TG device: the random registers, the
// generator sub-block, the backpressured demand, the enable and budget
// registers, the counters, and the network interface.
func (t *TG) SaveState(w *state.Writer) {
	t.lfsr.SaveState(w)
	t.gen.SaveState(w)
	w.Bool(t.hasPending)
	w.U16(uint16(t.pending.Dst))
	w.U16(t.pending.Len)
	w.U32(t.pending.Payload)
	w.Bool(t.enabled)
	w.U64(t.cfg.Limit)
	w.U64(t.offered)
	w.U64(t.backCycles)
	t.inj.SaveState(w)
}

// LoadState restores the TG device.
func (t *TG) LoadState(r *state.Reader) error {
	if err := t.lfsr.LoadState(r); err != nil {
		return fmt.Errorf("traffic: TG %s: %w", t.cfg.Name, err)
	}
	if err := t.gen.LoadState(r); err != nil {
		return fmt.Errorf("traffic: TG %s: %w", t.cfg.Name, err)
	}
	t.hasPending = r.Bool()
	t.pending.Dst = flit.EndpointID(r.U16())
	t.pending.Len = r.U16()
	t.pending.Payload = r.U32()
	t.enabled = r.Bool()
	t.cfg.Limit = r.U64()
	t.offered = r.U64()
	t.backCycles = r.U64()
	return t.inj.LoadState(r)
}
