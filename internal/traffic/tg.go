package traffic

import (
	"fmt"

	"nocemu/internal/nic"
	"nocemu/internal/probe"
	"nocemu/internal/rng"
)

// TGConfig parameterizes a traffic-generator device.
type TGConfig struct {
	// Name is the engine component name.
	Name string
	// Seed initializes the TG's random registers.
	Seed uint32
	// Limit stops the generator after this many packets (0 = no limit;
	// trace generators also stop when the trace ends).
	Limit uint64
}

// TG is a complete traffic-generator device: parameter registers
// (exposed via internal/regmap), a packet generator, and a network
// interface. It is an engine component.
type TG struct {
	cfg  TGConfig
	gen  Generator
	inj  *nic.Injector
	lfsr *rng.LFSR

	pending    Demand
	hasPending bool
	offered    uint64
	backCycles uint64
	enabled    bool
}

// NewTG assembles a traffic generator from its parts.
func NewTG(cfg TGConfig, gen Generator, inj *nic.Injector) (*TG, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("traffic: TG with empty name")
	}
	if gen == nil || inj == nil {
		return nil, fmt.Errorf("traffic: TG %s missing generator or injector", cfg.Name)
	}
	return &TG{cfg: cfg, gen: gen, inj: inj, lfsr: rng.New(cfg.Seed), enabled: true}, nil
}

// ComponentName implements engine.Component.
func (t *TG) ComponentName() string { return t.cfg.Name }

// Generator returns the packet generator (for register-bank wiring).
func (t *TG) Generator() Generator { return t.gen }

// Injector returns the network interface.
func (t *TG) Injector() *nic.Injector { return t.inj }

// SetProbe attaches the tracing probe to the network interface (nil
// disables tracing).
func (t *TG) SetProbe(p *probe.Probe) { t.inj.SetProbe(p) }

// SetEnabled gates traffic creation; the control module uses it for the
// start/stop registers. Queued flits still drain while disabled.
func (t *TG) SetEnabled(on bool) { t.enabled = on }

// Enabled reports whether traffic creation is active.
func (t *TG) Enabled() bool { return t.enabled }

// SetLimit changes the packet budget (0 = unlimited); a software-only
// reconfiguration used between runs.
func (t *TG) SetLimit(n uint64) { t.cfg.Limit = n }

// Reseed rewrites the random-initialization registers.
func (t *TG) Reseed(seed uint32) { t.lfsr.Reseed(seed) }

// limitReached reports whether the packet budget is spent.
func (t *TG) limitReached() bool {
	return t.cfg.Limit > 0 && t.offered >= t.cfg.Limit
}

// Tick implements engine.Component: consult the generator (unless
// holding a backpressured demand), hand demands to the injector, and
// pump one flit onto the wire.
func (t *TG) Tick(cycle uint64) {
	if t.enabled && !t.hasPending && !t.limitReached() && !t.gen.Exhausted() {
		if t.gen.Step(cycle, t.lfsr, &t.pending) {
			t.hasPending = true
			t.offered++
		}
	}
	if t.hasPending {
		if t.inj.CanAccept(t.pending.Len) {
			if _, err := t.inj.Offer(t.pending.Dst, t.pending.Len, t.pending.Payload, cycle); err != nil {
				panic(fmt.Sprintf("traffic: TG %s: %v", t.cfg.Name, err))
			}
			t.hasPending = false
		} else {
			t.backCycles++
		}
	}
	t.inj.Pump(cycle)
}

// Commit implements engine.Component; TG state is owned entirely by the
// Tick phase (its links commit separately).
func (t *TG) Commit(cycle uint64) {}

// NextWake implements engine.Quiescable. The TG is quiet when it holds
// no backpressured demand, its source queue has drained, and the
// generator either will never emit again (budget/trace exhausted, or
// disabled — Done cannot change while quiet) or promises a pure
// countdown sleep, in which case the wake cycle is the first Step that
// may emit. Uncollected credits accumulate on the credit wire, so
// skipping the per-cycle collection is invisible.
func (t *TG) NextWake(cycle uint64) (uint64, bool) {
	if t.hasPending || !t.inj.Drained() {
		return 0, false
	}
	if !t.enabled || t.limitReached() || t.gen.Exhausted() {
		return ^uint64(0), true
	}
	n, ok := t.gen.Sleep(cycle)
	if !ok || n == 0 {
		return 0, false
	}
	return cycle + 1 + n, true
}

// SkipIdle implements engine.Quiescable: repay the generator the Step
// calls the skipped cycles would have made. Nothing else advances per
// cycle while the TG is quiet (the injector neither stalls nor pumps
// with an empty queue).
func (t *TG) SkipIdle(from, n uint64) {
	if t.enabled && !t.hasPending && !t.limitReached() && !t.gen.Exhausted() {
		t.gen.SkipSteps(n)
	}
}

// Done implements engine.Stopper: the TG is done when its packet budget
// (or trace) is exhausted and every flit has left the network
// interface.
func (t *TG) Done() bool {
	if !t.limitReached() && !t.gen.Exhausted() {
		return false
	}
	return !t.hasPending && t.inj.Drained()
}

// TGStats is a snapshot of a traffic generator's counters.
type TGStats struct {
	// Offered counts packets created by the generator.
	Offered uint64
	// BackpressureCycles counts cycles a created packet waited for
	// space in the source queue.
	BackpressureCycles uint64
	// Injector holds the network-interface counters.
	Injector nic.InjectorStats
}

// Stats returns the TG counters.
func (t *TG) Stats() TGStats {
	return TGStats{
		Offered:            t.offered,
		BackpressureCycles: t.backCycles,
		Injector:           t.inj.Stats(),
	}
}

// ResetStats clears counters (not generator or queue state).
func (t *TG) ResetStats() {
	t.offered, t.backCycles = 0, 0
	t.inj.ResetStats()
}

// ResetRun rewinds the device for a software-only re-run: generator
// state, counters, and pending demand. Queued flits must already have
// drained (it panics otherwise, as that would lose traffic).
func (t *TG) ResetRun() {
	if !t.inj.Drained() {
		panic(fmt.Sprintf("traffic: TG %s reset with queued flits", t.cfg.Name))
	}
	t.hasPending = false
	t.gen.Reset()
	t.ResetStats()
}
