package traffic

import (
	"testing"

	"nocemu/internal/link"
	"nocemu/internal/nic"
	"nocemu/internal/trace"
)

// tgHarness holds a TG wired to raw links, with a manual sink that
// drains the output link at full rate and returns credits.
type tgHarness struct {
	tg  *TG
	out *link.Link
	cr  *link.CreditLink
}

func newTGHarness(t *testing.T, gen Generator, cfg TGConfig) *tgHarness {
	t.Helper()
	out := link.NewLink("out")
	cr := link.NewCreditLink("cr")
	inj, err := nic.NewInjector(0, out, cr, 4, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := NewTG(cfg, gen, inj)
	if err != nil {
		t.Fatal(err)
	}
	return &tgHarness{tg: tg, out: out, cr: cr}
}

// run executes n cycles, consuming every flit and returning credits.
func (h *tgHarness) run(n uint64) (flits int, packets int) {
	for c := uint64(0); c < n; c++ {
		h.tg.Tick(c)
		if f := h.out.Take(); f != nil {
			flits++
			if f.Kind.IsTail() {
				packets++
			}
			h.cr.Send(1)
		}
		h.tg.Commit(c)
		h.out.Commit(c)
		h.cr.Commit(c)
	}
	return flits, packets
}

func TestNewTGValidation(t *testing.T) {
	out := link.NewLink("o")
	cr := link.NewCreditLink("c")
	inj, _ := nic.NewInjector(0, out, cr, 1, 1, nil)
	g, _ := NewUniform(UniformConfig{LenMin: 1, LenMax: 1, Dst: fixedDst(1)})
	if _, err := NewTG(TGConfig{Name: ""}, g, inj); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTG(TGConfig{Name: "tg"}, nil, inj); err == nil {
		t.Error("nil generator accepted")
	}
	if _, err := NewTG(TGConfig{Name: "tg"}, g, nil); err == nil {
		t.Error("nil injector accepted")
	}
}

func TestTGLimitAndDone(t *testing.T) {
	g, _ := NewUniform(UniformConfig{LenMin: 2, LenMax: 2, GapMin: 1, GapMax: 1, Dst: fixedDst(1)})
	h := newTGHarness(t, g, TGConfig{Name: "tg", Seed: 1, Limit: 5})
	flits, packets := h.run(200)
	if packets != 5 || flits != 10 {
		t.Errorf("packets=%d flits=%d, want 5/10", packets, flits)
	}
	if !h.tg.Done() {
		t.Error("TG not done after limit")
	}
	st := h.tg.Stats()
	if st.Offered != 5 || st.Injector.PacketsSent != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTGTraceDoneWhenExhausted(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{Cycle: 0, Dst: 1, Len: 2},
		{Cycle: 5, Dst: 1, Len: 1},
	}}
	g, err := NewTraceGen(tr)
	if err != nil {
		t.Fatal(err)
	}
	h := newTGHarness(t, g, TGConfig{Name: "tg", Seed: 1})
	if h.tg.Done() {
		t.Error("done before start")
	}
	_, packets := h.run(50)
	if packets != 2 {
		t.Errorf("packets = %d", packets)
	}
	if !h.tg.Done() {
		t.Error("not done after trace end")
	}
}

func TestTGDisableStopsCreation(t *testing.T) {
	g, _ := NewUniform(UniformConfig{LenMin: 1, LenMax: 1, GapMin: 0, GapMax: 0, Dst: fixedDst(1)})
	h := newTGHarness(t, g, TGConfig{Name: "tg", Seed: 1})
	h.tg.SetEnabled(false)
	if h.tg.Enabled() {
		t.Error("Enabled() after disable")
	}
	flits, _ := h.run(50)
	if flits != 0 {
		t.Errorf("disabled TG emitted %d flits", flits)
	}
	h.tg.SetEnabled(true)
	flits, _ = h.run(50)
	if flits == 0 {
		t.Error("enabled TG emitted nothing")
	}
}

func TestTGBackpressureHoldsDemands(t *testing.T) {
	// Source queue of 16 flits; packets of 8; gap 0 -> generator wants
	// 1 flit/cycle but the sink never returns credits beyond initial 4.
	g, _ := NewUniform(UniformConfig{LenMin: 8, LenMax: 8, GapMin: 0, GapMax: 0, Dst: fixedDst(1)})
	out := link.NewLink("out")
	cr := link.NewCreditLink("cr")
	inj, err := nic.NewInjector(0, out, cr, 4, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := NewTG(TGConfig{Name: "tg", Seed: 1}, g, inj)
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(0); c < 100; c++ {
		tg.Tick(c)
		out.Take() // consume but never credit back
		tg.Commit(c)
		out.Commit(c)
		cr.Commit(c)
	}
	st := tg.Stats()
	// 2 packets fit in the queue; the third waits in pending.
	if st.Offered != 3 {
		t.Errorf("offered = %d, want 3 (2 queued + 1 held)", st.Offered)
	}
	if st.BackpressureCycles == 0 {
		t.Error("no backpressure recorded")
	}
	if st.Injector.FlitsSent != 4 {
		t.Errorf("flits sent = %d, want 4 (initial credits)", st.Injector.FlitsSent)
	}
}

func TestTGResetRun(t *testing.T) {
	g, _ := NewUniform(UniformConfig{LenMin: 1, LenMax: 1, GapMin: 1, GapMax: 1, Dst: fixedDst(1)})
	h := newTGHarness(t, g, TGConfig{Name: "tg", Seed: 1, Limit: 3})
	h.run(100)
	if !h.tg.Done() {
		t.Fatal("not done")
	}
	h.tg.ResetRun()
	st := h.tg.Stats()
	if st.Offered != 0 || st.Injector.FlitsSent != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	if h.tg.Done() {
		t.Error("done right after reset")
	}
	_, packets := h.run(100)
	if packets != 3 {
		t.Errorf("re-run packets = %d", packets)
	}
}

func TestTGReseedReproducesTraffic(t *testing.T) {
	mkRun := func() []uint64 {
		g, _ := NewUniform(UniformConfig{
			LenMin: 1, LenMax: 4, GapMin: 0, GapMax: 6,
			Dst: fixedDst(1), RandomPhase: true,
		})
		h := newTGHarness(t, g, TGConfig{Name: "tg", Seed: 42, Limit: 20})
		var sizes []uint64
		for c := uint64(0); c < 500; c++ {
			h.tg.Tick(c)
			if f := h.out.Take(); f != nil {
				if f.Kind.IsHead() {
					sizes = append(sizes, uint64(f.PacketLen))
				}
				h.cr.Send(1)
			}
			h.tg.Commit(c)
			h.out.Commit(c)
			h.cr.Commit(c)
		}
		return sizes
	}
	a, b := mkRun(), mkRun()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTGSetLimit(t *testing.T) {
	g, _ := NewUniform(UniformConfig{LenMin: 1, LenMax: 1, GapMin: 0, GapMax: 0, Dst: fixedDst(1)})
	h := newTGHarness(t, g, TGConfig{Name: "tg", Seed: 1, Limit: 2})
	h.run(50)
	if !h.tg.Done() {
		t.Fatal("not done at limit 2")
	}
	h.tg.SetLimit(4)
	if h.tg.Done() {
		t.Error("still done after raising limit")
	}
	_, packets := h.run(50)
	if packets != 2 {
		t.Errorf("extra packets = %d, want 2", packets)
	}
}
