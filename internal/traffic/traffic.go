// Package traffic implements the paper's traffic generators.
//
// A TG is "a bench of registers (for traffic parameterization, for
// random initialization), a packet generator which generates various
// traffic patterns, and a network interface". The packet generator is a
// Generator; the network interface is a nic.Injector; the registers are
// exposed through internal/regmap. Models provided, as in the paper:
//
//   - uniform: parameterized by packet length and inter-packet interval;
//   - burst: a 2-state (ON/OFF) Markov chain with configurable
//     transition probabilities;
//   - poisson: Bernoulli-per-cycle packet arrivals (the "other models
//     possible (i.e. Poisson)" of the paper);
//   - trace: replays traffic recorded from a real-life application.
package traffic

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/rng"
	"nocemu/internal/state"
	"nocemu/internal/trace"
)

// Demand is one packet the generator wants to emit.
type Demand struct {
	Dst     flit.EndpointID
	Len     uint16
	Payload uint32
}

// Generator is the packet-generator sub-block of a traffic generator.
type Generator interface {
	// ModelName identifies the traffic model for reports.
	ModelName() string
	// Step is consulted once per free cycle. When the model emits a
	// packet it fills d and returns true; false means no packet now.
	// The fill-in style keeps the per-cycle hot path allocation-free.
	Step(cycle uint64, r *rng.LFSR, d *Demand) bool
	// Exhausted reports that the generator will never emit again
	// (always false for stochastic models).
	Exhausted() bool
	// Reset rewinds generator state (trace position, Markov state) for
	// a software-only re-run.
	Reset()
	// Sleep reports how many upcoming Step calls after the given cycle
	// are guaranteed to be no-ops that consume no randomness (a pure
	// countdown, or waiting for a trace record's cycle). ok=false means
	// the model cannot promise any — e.g. it draws randomness every
	// step. The owning TG uses this for quiescence: it parks through
	// the sleep and repays the skipped calls with SkipSteps.
	Sleep(cycle uint64) (n uint64, ok bool)
	// SkipSteps advances internal countdowns exactly as n no-op Step
	// calls would have; n must not exceed the last Sleep result.
	SkipSteps(n uint64)
	// SaveState serializes the model's progress and runtime-writable
	// parameters (DESIGN.md §13).
	SaveState(w *state.Writer)
	// LoadState restores them, enforcing WriteParam's invariants.
	LoadState(r *state.Reader) error
}

// DstPolicy selects how destinations are drawn.
type DstPolicy string

const (
	// DstFixed always sends to Dsts[0].
	DstFixed DstPolicy = "fixed"
	// DstUniform draws uniformly from Dsts.
	DstUniform DstPolicy = "uniform"
	// DstRoundRobin cycles through Dsts.
	DstRoundRobin DstPolicy = "round-robin"
	// DstHotspot draws from Hot with probability HotQ16, uniformly from
	// Dsts otherwise — the classic hotspot pattern where a fraction of
	// all traffic converges on a few victims.
	DstHotspot DstPolicy = "hotspot"
)

// DstConfig parameterizes destination selection.
type DstConfig struct {
	Policy DstPolicy
	Dsts   []flit.EndpointID
	// Hot and HotQ16 apply to DstHotspot: each draw goes to a uniform
	// member of Hot with probability HotQ16 (Q16 fixed point).
	Hot    []flit.EndpointID
	HotQ16 uint16
}

type dstChooser struct {
	cfg DstConfig
	i   int
}

func newDstChooser(cfg DstConfig) (*dstChooser, error) {
	if len(cfg.Dsts) == 0 {
		return nil, fmt.Errorf("traffic: no destinations")
	}
	switch cfg.Policy {
	case DstFixed, DstUniform, DstRoundRobin:
	case DstHotspot:
		if len(cfg.Hot) == 0 {
			return nil, fmt.Errorf("traffic: hotspot policy with no hot destinations")
		}
		if cfg.HotQ16 == 0 {
			return nil, fmt.Errorf("traffic: hotspot policy with zero hot probability")
		}
	default:
		return nil, fmt.Errorf("traffic: unknown destination policy %q", cfg.Policy)
	}
	return &dstChooser{cfg: cfg}, nil
}

func (d *dstChooser) next(r *rng.LFSR) flit.EndpointID {
	switch d.cfg.Policy {
	case DstUniform:
		return d.cfg.Dsts[r.Intn(len(d.cfg.Dsts))]
	case DstRoundRobin:
		dst := d.cfg.Dsts[d.i]
		d.i = (d.i + 1) % len(d.cfg.Dsts)
		return dst
	case DstHotspot:
		// Stateless draws keep the chooser's snapshot format (the
		// rotation cursor alone) unchanged.
		if r.Bernoulli16(d.cfg.HotQ16) {
			return d.cfg.Hot[r.Intn(len(d.cfg.Hot))]
		}
		return d.cfg.Dsts[r.Intn(len(d.cfg.Dsts))]
	default:
		return d.cfg.Dsts[0]
	}
}

func (d *dstChooser) reset() { d.i = 0 }

// checkLenRange validates a packet-length range.
func checkLenRange(min, max uint16) error {
	if min < 1 || max < min {
		return fmt.Errorf("traffic: packet length range [%d,%d]", min, max)
	}
	return nil
}

// drawLen draws a packet length from [min, max]. Reading the bounds at
// draw time keeps register writes (WriteParam) live without a rebuild.
func drawLen(r *rng.LFSR, min, max uint16) uint16 {
	if min == max {
		return min
	}
	return uint16(r.IntRange(int(min), int(max)))
}

// UniformConfig parameterizes the uniform model: packets of length
// [LenMin, LenMax] separated by idle gaps of [GapMin, GapMax] cycles on
// top of the packet's own serialization time. The mean offered load is
// meanLen / (meanLen + meanGap) flits per cycle.
type UniformConfig struct {
	LenMin, LenMax uint16
	GapMin, GapMax uint32
	Dst            DstConfig
	// RandomPhase desynchronizes multiple generators by drawing the
	// first emission offset from [0, len+gap).
	RandomPhase bool
}

// Uniform is the paper's uniform traffic model.
type Uniform struct {
	cfg     UniformConfig
	dst     *dstChooser
	wait    uint64
	started bool
}

// NewUniform validates the configuration and builds the model.
func NewUniform(cfg UniformConfig) (*Uniform, error) {
	if err := checkLenRange(cfg.LenMin, cfg.LenMax); err != nil {
		return nil, err
	}
	if cfg.GapMax < cfg.GapMin {
		return nil, fmt.Errorf("traffic: gap range [%d,%d]", cfg.GapMin, cfg.GapMax)
	}
	dst, err := newDstChooser(cfg.Dst)
	if err != nil {
		return nil, err
	}
	return &Uniform{cfg: cfg, dst: dst}, nil
}

// ModelName implements Generator.
func (u *Uniform) ModelName() string { return "uniform" }

// Exhausted implements Generator; the uniform model never ends.
func (u *Uniform) Exhausted() bool { return false }

// Reset implements Generator.
func (u *Uniform) Reset() {
	u.wait, u.started = 0, false
	u.dst.reset()
}

func (u *Uniform) gap(r *rng.LFSR) uint64 {
	if u.cfg.GapMin == u.cfg.GapMax {
		return uint64(u.cfg.GapMin)
	}
	return uint64(r.IntRange(int(u.cfg.GapMin), int(u.cfg.GapMax)))
}

// Step implements Generator.
func (u *Uniform) Step(cycle uint64, r *rng.LFSR, d *Demand) bool {
	if !u.started {
		u.started = true
		if u.cfg.RandomPhase {
			period := int(u.cfg.LenMin) + int(u.cfg.GapMin)
			if period > 1 {
				u.wait = uint64(r.Intn(period))
			}
		}
	}
	if u.wait > 0 {
		u.wait--
		return false
	}
	l := drawLen(r, u.cfg.LenMin, u.cfg.LenMax)
	// Next emission after this packet's serialization plus a gap.
	u.wait = uint64(l) + u.gap(r) - 1
	*d = Demand{Dst: u.dst.next(r), Len: l}
	return true
}

// Sleep implements Generator: while wait is counting down, Step only
// decrements it. Before the first Step the model still owes its
// random-phase draw, so it cannot sleep.
func (u *Uniform) Sleep(cycle uint64) (uint64, bool) {
	if !u.started {
		return 0, false
	}
	return u.wait, u.wait > 0
}

// SkipSteps implements Generator.
func (u *Uniform) SkipSteps(n uint64) {
	if n > u.wait {
		n = u.wait
	}
	u.wait -= n
}

// BurstConfig parameterizes the burst model: a 2-state Markov chain.
// In the ON state the generator emits packets back to back; transition
// probabilities are Q16 fixed point (65536 = probability 1), the format
// of the TG's parameter registers.
type BurstConfig struct {
	// POffOn is the per-cycle probability of leaving OFF.
	POffOn uint16
	// POnOff is the per-packet probability of ending the burst.
	POnOff         uint16
	LenMin, LenMax uint16
	Dst            DstConfig
}

// Burst is the paper's burst traffic model.
type Burst struct {
	cfg  BurstConfig
	dst  *dstChooser
	on   bool
	busy uint64
}

// NewBurst validates the configuration and builds the model.
func NewBurst(cfg BurstConfig) (*Burst, error) {
	if err := checkLenRange(cfg.LenMin, cfg.LenMax); err != nil {
		return nil, err
	}
	if cfg.POffOn == 0 {
		return nil, fmt.Errorf("traffic: burst POffOn is zero (generator would never start)")
	}
	if cfg.POnOff == 0 {
		return nil, fmt.Errorf("traffic: burst POnOff is zero (burst would never end)")
	}
	dst, err := newDstChooser(cfg.Dst)
	if err != nil {
		return nil, err
	}
	return &Burst{cfg: cfg, dst: dst}, nil
}

// ModelName implements Generator.
func (b *Burst) ModelName() string { return "burst" }

// Exhausted implements Generator.
func (b *Burst) Exhausted() bool { return false }

// Reset implements Generator.
func (b *Burst) Reset() {
	b.on, b.busy = false, 0
	b.dst.reset()
}

// Step implements Generator.
func (b *Burst) Step(cycle uint64, r *rng.LFSR, d *Demand) bool {
	if b.busy > 0 {
		b.busy--
		return false
	}
	if !b.on {
		if !r.Bernoulli16(b.cfg.POffOn) {
			return false
		}
		b.on = true
	}
	l := drawLen(r, b.cfg.LenMin, b.cfg.LenMax)
	b.busy = uint64(l) - 1 // serialization of this packet
	if r.Bernoulli16(b.cfg.POnOff) {
		b.on = false
	}
	*d = Demand{Dst: b.dst.next(r), Len: l}
	return true
}

// Sleep implements Generator: only the serialization countdown is a
// guaranteed no-op; in the OFF state every Step draws the Markov
// transition, so the model cannot sleep there.
func (b *Burst) Sleep(cycle uint64) (uint64, bool) {
	return b.busy, b.busy > 0
}

// SkipSteps implements Generator.
func (b *Burst) SkipSteps(n uint64) {
	if n > b.busy {
		n = b.busy
	}
	b.busy -= n
}

// MeanLoad returns the analytic mean offered load (flits/cycle) of a
// burst configuration, used by experiments to size parameters: the
// chain is ON for meanLen/pOnOff cycles per burst and OFF for
// 1/pOffOn cycles between bursts.
func (cfg BurstConfig) MeanLoad() float64 {
	pOn := float64(cfg.POffOn) / 65536
	pOff := float64(cfg.POnOff) / 65536
	meanLen := float64(cfg.LenMin+cfg.LenMax) / 2
	onCycles := meanLen / pOff
	offCycles := 1 / pOn
	return onCycles / (onCycles + offCycles)
}

// PoissonConfig parameterizes the Poisson model: packet creations are a
// Bernoulli process with per-cycle probability Lambda (Q16), giving
// geometrically distributed inter-arrival times — the discrete-time
// Poisson process.
type PoissonConfig struct {
	// Lambda is the per-cycle packet creation probability in Q16.
	Lambda         uint16
	LenMin, LenMax uint16
	Dst            DstConfig
}

// Poisson is a Poisson-arrivals traffic model.
type Poisson struct {
	cfg PoissonConfig
	dst *dstChooser
}

// NewPoisson validates the configuration and builds the model.
func NewPoisson(cfg PoissonConfig) (*Poisson, error) {
	if cfg.Lambda == 0 {
		return nil, fmt.Errorf("traffic: poisson lambda is zero")
	}
	if err := checkLenRange(cfg.LenMin, cfg.LenMax); err != nil {
		return nil, err
	}
	dst, err := newDstChooser(cfg.Dst)
	if err != nil {
		return nil, err
	}
	return &Poisson{cfg: cfg, dst: dst}, nil
}

// ModelName implements Generator.
func (p *Poisson) ModelName() string { return "poisson" }

// Exhausted implements Generator.
func (p *Poisson) Exhausted() bool { return false }

// Reset implements Generator.
func (p *Poisson) Reset() { p.dst.reset() }

// Step implements Generator.
func (p *Poisson) Step(cycle uint64, r *rng.LFSR, d *Demand) bool {
	if !r.Bernoulli16(p.cfg.Lambda) {
		return false
	}
	*d = Demand{Dst: p.dst.next(r), Len: drawLen(r, p.cfg.LenMin, p.cfg.LenMax)}
	return true
}

// Sleep implements Generator: a Poisson model draws randomness every
// cycle and can never sleep.
func (p *Poisson) Sleep(cycle uint64) (uint64, bool) { return 0, false }

// SkipSteps implements Generator.
func (p *Poisson) SkipSteps(n uint64) {}

// TraceGen replays a recorded trace: each record is emitted at its
// recorded cycle, or as soon afterwards as backpressure allows.
type TraceGen struct {
	tr  *trace.Trace
	idx int
}

// NewTraceGen validates the trace and builds the generator.
func NewTraceGen(tr *trace.Trace) (*TraceGen, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceGen{tr: tr}, nil
}

// ModelName implements Generator.
func (g *TraceGen) ModelName() string { return "trace" }

// Exhausted implements Generator.
func (g *TraceGen) Exhausted() bool { return g.idx >= len(g.tr.Records) }

// Reset implements Generator.
func (g *TraceGen) Reset() { g.idx = 0 }

// Remaining returns the number of records not yet emitted.
func (g *TraceGen) Remaining() int { return len(g.tr.Records) - g.idx }

// Step implements Generator.
func (g *TraceGen) Step(cycle uint64, r *rng.LFSR, d *Demand) bool {
	if g.idx >= len(g.tr.Records) {
		return false
	}
	rec := g.tr.Records[g.idx]
	if rec.Cycle > cycle {
		return false
	}
	g.idx++
	*d = Demand{Dst: rec.Dst, Len: rec.Len}
	return true
}

// Sleep implements Generator: until the next record's cycle arrives,
// Step is a stateless no-op.
func (g *TraceGen) Sleep(cycle uint64) (uint64, bool) {
	if g.idx >= len(g.tr.Records) {
		return 0, false
	}
	next := g.tr.Records[g.idx].Cycle
	if next <= cycle+1 {
		return 0, false
	}
	return next - cycle - 1, true
}

// SkipSteps implements Generator; waiting consumes no state.
func (g *TraceGen) SkipSteps(n uint64) {}
