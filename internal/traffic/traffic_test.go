package traffic

import (
	"math"
	"testing"

	"nocemu/internal/flit"
	"nocemu/internal/rng"
	"nocemu/internal/trace"
)

func fixedDst(id flit.EndpointID) DstConfig {
	return DstConfig{Policy: DstFixed, Dsts: []flit.EndpointID{id}}
}

// drive runs a generator for n cycles and returns the demands with the
// cycles they were produced at.
func drive(g Generator, r *rng.LFSR, n uint64) (demands []Demand, cycles []uint64) {
	for c := uint64(0); c < n; c++ {
		var d Demand
		if g.Step(c, r, &d) {
			demands = append(demands, d)
			cycles = append(cycles, c)
		}
	}
	return demands, cycles
}

func TestDstChooserValidation(t *testing.T) {
	if _, err := newDstChooser(DstConfig{Policy: DstFixed}); err == nil {
		t.Error("empty destination set accepted")
	}
	if _, err := newDstChooser(DstConfig{Policy: "bogus", Dsts: []flit.EndpointID{1}}); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestDstPolicies(t *testing.T) {
	r := rng.New(1)
	set := []flit.EndpointID{10, 11, 12}

	d, err := newDstChooser(DstConfig{Policy: DstFixed, Dsts: set})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if d.next(r) != 10 {
			t.Fatal("fixed policy moved")
		}
	}

	d, _ = newDstChooser(DstConfig{Policy: DstRoundRobin, Dsts: set})
	got := []flit.EndpointID{d.next(r), d.next(r), d.next(r), d.next(r)}
	want := []flit.EndpointID{10, 11, 12, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin = %v", got)
		}
	}
	d.reset()
	if d.next(r) != 10 {
		t.Error("reset did not rewind round robin")
	}

	d, _ = newDstChooser(DstConfig{Policy: DstUniform, Dsts: set})
	seen := map[flit.EndpointID]bool{}
	for i := 0; i < 200; i++ {
		seen[d.next(r)] = true
	}
	if len(seen) != 3 {
		t.Errorf("uniform covered %d destinations", len(seen))
	}
}

func TestNewUniformValidation(t *testing.T) {
	bad := []UniformConfig{
		{LenMin: 0, LenMax: 1, Dst: fixedDst(1)},
		{LenMin: 3, LenMax: 2, Dst: fixedDst(1)},
		{LenMin: 1, LenMax: 1, GapMin: 5, GapMax: 2, Dst: fixedDst(1)},
		{LenMin: 1, LenMax: 1, Dst: DstConfig{Policy: DstFixed}},
	}
	for i, cfg := range bad {
		if _, err := NewUniform(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUniformSpacingFixed(t *testing.T) {
	g, err := NewUniform(UniformConfig{LenMin: 4, LenMax: 4, GapMin: 6, GapMax: 6, Dst: fixedDst(1)})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	demands, cycles := drive(g, r, 100)
	if len(demands) != 10 {
		t.Fatalf("demands = %d, want 10", len(demands))
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i]-cycles[i-1] != 10 {
			t.Errorf("spacing %d, want 10 (len+gap)", cycles[i]-cycles[i-1])
		}
	}
	if g.ModelName() != "uniform" || g.Exhausted() {
		t.Error("metadata wrong")
	}
}

func TestUniformOfferedLoad(t *testing.T) {
	// len 9, gap 11 -> 45% offered load, the paper's setting.
	g, err := NewUniform(UniformConfig{LenMin: 9, LenMax: 9, GapMin: 11, GapMax: 11, Dst: fixedDst(1)})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	demands, _ := drive(g, r, 20000)
	var flits uint64
	for _, d := range demands {
		flits += uint64(d.Len)
	}
	load := float64(flits) / 20000
	if math.Abs(load-0.45) > 0.01 {
		t.Errorf("load = %v, want ~0.45", load)
	}
}

func TestUniformRandomPhaseDesynchronizes(t *testing.T) {
	mk := func(seed uint32) uint64 {
		g, err := NewUniform(UniformConfig{
			LenMin: 4, LenMax: 4, GapMin: 6, GapMax: 6,
			Dst: fixedDst(1), RandomPhase: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		_, cycles := drive(g, r, 50)
		if len(cycles) == 0 {
			t.Fatal("no demands")
		}
		return cycles[0]
	}
	seen := map[uint64]bool{}
	for seed := uint32(1); seed <= 8; seed++ {
		seen[mk(seed)] = true
	}
	if len(seen) < 3 {
		t.Errorf("random phase produced only %d distinct offsets", len(seen))
	}
}

func TestUniformReset(t *testing.T) {
	g, _ := NewUniform(UniformConfig{LenMin: 2, LenMax: 2, GapMin: 3, GapMax: 3, Dst: fixedDst(1)})
	r := rng.New(5)
	drive(g, r, 17)
	g.Reset()
	var d Demand
	if !g.Step(0, r, &d) {
		t.Error("after reset first step did not emit")
	}
}

func TestNewBurstValidation(t *testing.T) {
	bad := []BurstConfig{
		{POffOn: 0, POnOff: 100, LenMin: 1, LenMax: 1, Dst: fixedDst(1)},
		{POffOn: 100, POnOff: 0, LenMin: 1, LenMax: 1, Dst: fixedDst(1)},
		{POffOn: 100, POnOff: 100, LenMin: 0, LenMax: 1, Dst: fixedDst(1)},
		{POffOn: 100, POnOff: 100, LenMin: 1, LenMax: 1, Dst: DstConfig{Policy: DstFixed}},
	}
	for i, cfg := range bad {
		if _, err := NewBurst(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBurstBackToBackWithinBurst(t *testing.T) {
	// Burst ends per packet with p=1/16; bursts average 16 packets.
	g, err := NewBurst(BurstConfig{
		POffOn: 6554, POnOff: 4096, LenMin: 3, LenMax: 3, Dst: fixedDst(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	demands, cycles := drive(g, r, 50000)
	if len(demands) < 100 {
		t.Fatalf("too few demands: %d", len(demands))
	}
	// Within a burst consecutive packets are exactly len apart.
	backToBack := 0
	for i := 1; i < len(cycles); i++ {
		if cycles[i]-cycles[i-1] == 3 {
			backToBack++
		}
	}
	if backToBack == 0 {
		t.Error("no back-to-back packets observed in burst traffic")
	}
}

func TestBurstMeanLoadMatchesAnalytic(t *testing.T) {
	cfg := BurstConfig{
		POffOn: 3277,  // ~0.05/cycle to start a burst
		POnOff: 13107, // ~0.2/packet to end it
		LenMin: 4, LenMax: 4, Dst: fixedDst(1),
	}
	g, err := NewBurst(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	const horizon = 400000
	demands, _ := drive(g, r, horizon)
	var flits uint64
	for _, d := range demands {
		flits += uint64(d.Len)
	}
	measured := float64(flits) / horizon
	want := cfg.MeanLoad()
	if math.Abs(measured-want) > 0.05 {
		t.Errorf("measured load %v vs analytic %v", measured, want)
	}
}

func TestPoissonRate(t *testing.T) {
	if _, err := NewPoisson(PoissonConfig{Lambda: 0, LenMin: 1, LenMax: 1, Dst: fixedDst(1)}); err == nil {
		t.Error("lambda 0 accepted")
	}
	g, err := NewPoisson(PoissonConfig{Lambda: 6554, LenMin: 2, LenMax: 2, Dst: fixedDst(1)}) // ~0.1
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	demands, _ := drive(g, r, 100000)
	rate := float64(len(demands)) / 100000
	if math.Abs(rate-0.1) > 0.01 {
		t.Errorf("packet rate = %v, want ~0.1", rate)
	}
	if g.ModelName() != "poisson" {
		t.Error("model name")
	}
	g.Reset() // must not panic
}

func TestTraceGen(t *testing.T) {
	tr := &trace.Trace{Records: []trace.Record{
		{Cycle: 2, Dst: 5, Len: 3},
		{Cycle: 2, Dst: 6, Len: 1},
		{Cycle: 7, Dst: 5, Len: 2},
	}}
	g, err := NewTraceGen(tr)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	demands, cycles := drive(g, r, 10)
	if len(demands) != 3 {
		t.Fatalf("demands = %d", len(demands))
	}
	// Two records at cycle 2 serialize over cycles 2 and 3.
	if cycles[0] != 2 || cycles[1] != 3 || cycles[2] != 7 {
		t.Errorf("cycles = %v", cycles)
	}
	if demands[0].Dst != 5 || demands[0].Len != 3 || demands[1].Dst != 6 {
		t.Errorf("demands = %+v %+v", demands[0], demands[1])
	}
	if !g.Exhausted() || g.Remaining() != 0 {
		t.Error("not exhausted after replay")
	}
	g.Reset()
	if g.Exhausted() || g.Remaining() != 3 {
		t.Error("reset did not rewind")
	}
	bad := &trace.Trace{Records: []trace.Record{{Cycle: 0, Dst: 1, Len: 0}}}
	if _, err := NewTraceGen(bad); err == nil {
		t.Error("invalid trace accepted")
	}
}
