package traffic

import (
	"fmt"
	"sort"

	"nocemu/internal/flit"
)

// WorkloadEnv is what a workload recipe knows about the platform it is
// generating traffic for: the source/sink endpoint lists (index-aligned
// — source i and sink i share a terminal), the target injection rate in
// flits per cycle per source, the packet length, and a seed that
// controls the workload's structural choices (e.g. which sink is the
// hotspot victim). Per-generator random streams are seeded separately
// by the platform layer.
type WorkloadEnv struct {
	Sources   []flit.EndpointID
	Sinks     []flit.EndpointID
	Injection float64
	PacketLen uint16
	Seed      uint32
}

// EndpointTraffic is one source's generated traffic configuration:
// exactly one model config is set, mirroring platform.TGSpec without
// importing it (platform depends on traffic, not the reverse).
type EndpointTraffic struct {
	Model   string
	Uniform *UniformConfig
	Flow    *FlowConfig
	Incast  *IncastConfig
}

// Workload is a registered traffic recipe: given the endpoint lists it
// emits one EndpointTraffic per source. Registering a workload makes
// it selectable from JSON configs and the -wl CLI flag.
type Workload struct {
	// Kind is the registry key ("uniform", "hotspot", ...).
	Kind string
	// Summary is a one-line description for docs and flag help.
	Summary string
	// Build emits the per-source traffic configurations.
	Build func(env WorkloadEnv) ([]EndpointTraffic, error)
}

var workloads = map[string]Workload{}

// RegisterWorkload adds a workload recipe; it panics on duplicate or
// empty kinds (registration is an init-time programming act).
func RegisterWorkload(w Workload) {
	if w.Kind == "" {
		panic("traffic: RegisterWorkload with empty kind")
	}
	if w.Build == nil {
		panic(fmt.Sprintf("traffic: RegisterWorkload(%q) with nil Build", w.Kind))
	}
	if _, dup := workloads[w.Kind]; dup {
		panic(fmt.Sprintf("traffic: RegisterWorkload(%q) called twice", w.Kind))
	}
	workloads[w.Kind] = w
}

// LookupWorkload returns the workload registered under kind.
func LookupWorkload(kind string) (Workload, bool) {
	w, ok := workloads[kind]
	return w, ok
}

// Workloads returns every registered workload, sorted by kind.
func Workloads() []Workload {
	out := make([]Workload, 0, len(workloads))
	for _, w := range workloads {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WorkloadKinds returns the sorted registered workload names.
func WorkloadKinds() []string {
	out := make([]string, 0, len(workloads))
	for k := range workloads {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (e WorkloadEnv) check() error {
	if len(e.Sources) == 0 || len(e.Sources) != len(e.Sinks) {
		return fmt.Errorf("traffic: workload env with %d sources, %d sinks", len(e.Sources), len(e.Sinks))
	}
	if e.Injection <= 0 || e.Injection > 1 {
		return fmt.Errorf("traffic: workload injection %g not in (0,1]", e.Injection)
	}
	if e.PacketLen < 1 {
		return fmt.Errorf("traffic: workload packet length %d", e.PacketLen)
	}
	return nil
}

// otherSinks returns the sinks excluding index self, in order.
func otherSinks(env WorkloadEnv, self int) []flit.EndpointID {
	dsts := make([]flit.EndpointID, 0, len(env.Sinks)-1)
	for j, s := range env.Sinks {
		if j != self {
			dsts = append(dsts, s)
		}
	}
	return dsts
}

// uniformGapMax sizes the uniform model's gap so the mean offered load
// is the requested injection rate: mean gap = gapMax/2 and load =
// len/(len+meanGap), hence gapMax = 2*len*(1-inj)/inj.
func uniformGapMax(packetLen uint16, injection float64) uint32 {
	return uint32(2 * float64(packetLen) * (1 - injection) / injection)
}

func init() {
	RegisterWorkload(Workload{
		Kind:    "uniform",
		Summary: "uniform random: every source sends fixed-length packets to uniformly drawn other sinks",
		Build: func(env WorkloadEnv) ([]EndpointTraffic, error) {
			if err := env.check(); err != nil {
				return nil, err
			}
			out := make([]EndpointTraffic, len(env.Sources))
			for i := range env.Sources {
				out[i] = EndpointTraffic{
					Model: "uniform",
					Uniform: &UniformConfig{
						LenMin: env.PacketLen, LenMax: env.PacketLen,
						GapMin: 0, GapMax: uniformGapMax(env.PacketLen, env.Injection),
						Dst:         DstConfig{Policy: DstUniform, Dsts: otherSinks(env, i)},
						RandomPhase: true,
					},
				}
			}
			return out, nil
		},
	})
	RegisterWorkload(Workload{
		Kind:    "hotspot",
		Summary: "uniform background with 25% of traffic converging on one seed-picked victim sink",
		Build: func(env WorkloadEnv) ([]EndpointTraffic, error) {
			if err := env.check(); err != nil {
				return nil, err
			}
			hot := env.Sinks[int(env.Seed)%len(env.Sinks)]
			out := make([]EndpointTraffic, len(env.Sources))
			for i := range env.Sources {
				out[i] = EndpointTraffic{
					Model: "uniform",
					Uniform: &UniformConfig{
						LenMin: env.PacketLen, LenMax: env.PacketLen,
						GapMin: 0, GapMax: uniformGapMax(env.PacketLen, env.Injection),
						Dst: DstConfig{
							Policy: DstHotspot,
							Dsts:   otherSinks(env, i),
							Hot:    []flit.EndpointID{hot},
							HotQ16: 16384, // 25% of draws hit the victim
						},
						RandomPhase: true,
					},
				}
			}
			return out, nil
		},
	})
	RegisterWorkload(Workload{
		Kind:    "incast",
		Summary: "synchronized many-to-one waves: all sources burst 8 packets at the same rotating victim each epoch",
		Build: func(env WorkloadEnv) ([]EndpointTraffic, error) {
			if err := env.check(); err != nil {
				return nil, err
			}
			const packetsPerWave = 8
			// The epoch spreads a wave's flits to the mean injection
			// rate; every generator shares it, plus offset 0 and the
			// same round-robin rotation, so waves stay synchronized.
			epoch := uint64(float64(packetsPerWave) * float64(env.PacketLen) / env.Injection)
			if epoch < 1 {
				epoch = 1
			}
			out := make([]EndpointTraffic, len(env.Sources))
			for i := range env.Sources {
				out[i] = EndpointTraffic{
					Model: "incast",
					Incast: &IncastConfig{
						Epoch:          epoch,
						PacketsPerWave: packetsPerWave,
						LenMin:         env.PacketLen, LenMax: env.PacketLen,
						Dst: DstConfig{Policy: DstRoundRobin, Dsts: env.Sinks},
					},
				}
			}
			return out, nil
		},
	})
	RegisterWorkload(Workload{
		Kind:    "flows",
		Summary: "flow-based arrivals with bounded-Pareto (heavy-tailed) flow sizes, 1-64 packets",
		Build: func(env WorkloadEnv) ([]EndpointTraffic, error) {
			if err := env.check(); err != nil {
				return nil, err
			}
			const sizeMin, sizeMax = 1, 64
			// Mean bounded-Pareto size for [1,64] at α=1 is ≈5 packets;
			// pick the idle-cycle arrival probability so the long-run
			// busy fraction matches the requested injection rate.
			const meanFlowPackets = 5.0
			meanFlits := meanFlowPackets * float64(env.PacketLen)
			arrival := uint32(0xFFFF) // injection 1: saturate
			if env.Injection < 1 {
				p := env.Injection / (meanFlits * (1 - env.Injection))
				arrival = uint32(p * 65536)
				if arrival < 1 {
					arrival = 1
				}
				if arrival > 0xFFFF {
					arrival = 0xFFFF
				}
			}
			out := make([]EndpointTraffic, len(env.Sources))
			for i := range env.Sources {
				out[i] = EndpointTraffic{
					Model: "flow",
					Flow: &FlowConfig{
						ArrivalQ16: uint16(arrival),
						SizeMin:    sizeMin, SizeMax: sizeMax,
						LenMin: env.PacketLen, LenMax: env.PacketLen,
						Dst: DstConfig{Policy: DstUniform, Dsts: otherSinks(env, i)},
					},
				}
			}
			return out, nil
		},
	})
}
