package traffic

import (
	"testing"

	"nocemu/internal/flit"
)

func zooEnv(n int, inj float64, seed uint32) WorkloadEnv {
	env := WorkloadEnv{Injection: inj, PacketLen: 4, Seed: seed}
	for i := 0; i < n; i++ {
		env.Sources = append(env.Sources, flit.EndpointID(i))
		env.Sinks = append(env.Sinks, flit.EndpointID(n+i))
	}
	return env
}

func TestWorkloadRegistryLists(t *testing.T) {
	want := []string{"flows", "hotspot", "incast", "script", "uniform"}
	got := WorkloadKinds()
	if len(got) != len(want) {
		t.Fatalf("WorkloadKinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WorkloadKinds() = %v, want %v", got, want)
		}
	}
	if _, ok := LookupWorkload("uniform"); !ok {
		t.Error("uniform workload missing")
	}
	if _, ok := LookupWorkload("bogus"); ok {
		t.Error("bogus workload found")
	}
}

// TestWorkloadsEmitValidConfigs: every registered workload emits one
// validated config per source at several sizes and injection rates.
func TestWorkloadsEmitValidConfigs(t *testing.T) {
	for _, w := range Workloads() {
		for _, n := range []int{2, 9, 64} {
			for _, inj := range []float64{0.05, 0.5, 1.0} {
				specs, err := w.Build(zooEnv(n, inj, 3))
				if err != nil {
					t.Fatalf("%s n=%d inj=%g: %v", w.Kind, n, inj, err)
				}
				if len(specs) != n {
					t.Fatalf("%s n=%d: %d specs", w.Kind, n, len(specs))
				}
				for i, s := range specs {
					models := 0
					if s.Uniform != nil {
						models++
					}
					if s.Flow != nil {
						models++
					}
					if s.Incast != nil {
						models++
					}
					// The script workload is config-free by design:
					// its traffic arrives via ScriptGen.Append at run
					// time.
					wantModels := 1
					if s.Model == "script" {
						wantModels = 0
					}
					if models != wantModels || s.Model == "" {
						t.Fatalf("%s source %d: %d model configs (model %q)", w.Kind, i, models, s.Model)
					}
				}
			}
		}
		if _, err := w.Build(WorkloadEnv{}); err == nil {
			t.Errorf("%s accepted an empty env", w.Kind)
		}
		if _, err := w.Build(zooEnv(4, 1.5, 0)); err == nil {
			t.Errorf("%s accepted injection 1.5", w.Kind)
		}
	}
}

// TestHotspotVictimIsSeedControlled: the hotspot victim moves with the
// workload seed and every source aims 25% of draws at it.
func TestHotspotVictimIsSeedControlled(t *testing.T) {
	w, _ := LookupWorkload("hotspot")
	a, err := w.Build(zooEnv(8, 0.1, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Build(zooEnv(8, 0.1, 3))
	if err != nil {
		t.Fatal(err)
	}
	victim := func(specs []EndpointTraffic) flit.EndpointID {
		hot := specs[0].Uniform.Dst.Hot
		if len(hot) != 1 {
			t.Fatalf("hot set %v", hot)
		}
		for _, s := range specs {
			if len(s.Uniform.Dst.Hot) != 1 || s.Uniform.Dst.Hot[0] != hot[0] {
				t.Fatal("sources disagree on the victim")
			}
			if s.Uniform.Dst.HotQ16 != 16384 {
				t.Fatalf("HotQ16 = %d", s.Uniform.Dst.HotQ16)
			}
		}
		return hot[0]
	}
	if victim(a) == victim(b) {
		t.Error("victim did not move with the seed")
	}
}

// TestIncastWaveSynchronization: all sources share the epoch, offset
// and rotation so their waves converge on one sink at a time.
func TestIncastWaveSynchronization(t *testing.T) {
	w, _ := LookupWorkload("incast")
	specs, err := w.Build(zooEnv(6, 0.2, 0))
	if err != nil {
		t.Fatal(err)
	}
	first := specs[0].Incast
	for i, s := range specs {
		c := s.Incast
		if c.Epoch != first.Epoch || c.Offset != first.Offset ||
			c.PacketsPerWave != first.PacketsPerWave {
			t.Fatalf("source %d wave schedule differs", i)
		}
		if c.Dst.Policy != DstRoundRobin || len(c.Dst.Dsts) != 6 {
			t.Fatalf("source %d rotation %v over %d sinks", i, c.Dst.Policy, len(c.Dst.Dsts))
		}
	}
}

// TestFlowsArrivalSaturates: at injection 1.0 the arrival probability
// pins to the Q16 maximum instead of dividing by zero.
func TestFlowsArrivalSaturates(t *testing.T) {
	w, _ := LookupWorkload("flows")
	specs, err := w.Build(zooEnv(2, 1.0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := specs[0].Flow.ArrivalQ16; got != 0xFFFF {
		t.Errorf("ArrivalQ16 at injection 1.0 = %d, want 65535", got)
	}
}
