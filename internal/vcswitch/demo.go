package vcswitch

import (
	"fmt"

	"nocemu/internal/arb"
	"nocemu/internal/engine"
	"nocemu/internal/flit"
	"nocemu/internal/link"
	"nocemu/internal/routing"
	"nocemu/internal/topology"
)

// Ring3 builds the canonical deadlock demonstration network: a
// unidirectional three-switch ring where every switch hosts one source
// and one sink and every flow crosses two links, creating a cyclic
// channel dependency. With numVC=1 and packets longer than the ring's
// total buffering the network deadlocks; with numVC=2 and dateline=true
// (the dateline on link 2->0) it is deadlock-free.
//
// It returns the engine (run it with RunUntil) and the three sinks.
func Ring3(numVC int, dateline bool, perSource int, pktLen uint16, bufDepth int) (*engine.Engine, []*Sink, error) {
	if perSource < 1 || pktLen < 1 {
		return nil, nil, fmt.Errorf("vcswitch: ring3 with %d packets of %d flits", perSource, pktLen)
	}
	if bufDepth < 1 {
		bufDepth = 2
	}
	eng := engine.New()
	topo, err := topology.New("ring3", 3)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < 3; i++ {
		if err := topo.AddLink(topology.NodeID(i), topology.NodeID((i+1)%3)); err != nil {
			return nil, nil, err
		}
		if err := topo.AddSource(flit.EndpointID(i), topology.NodeID(i)); err != nil {
			return nil, nil, err
		}
		if err := topo.AddSink(flit.EndpointID(100+i), topology.NodeID(i)); err != nil {
			return nil, nil, err
		}
	}
	table, err := routing.BuildShortestPath(topo)
	if err != nil {
		return nil, nil, err
	}

	wire := func(name string) (*link.Link, []*link.CreditLink) {
		l := link.NewLink(name)
		eng.MustRegister(l)
		crs := make([]*link.CreditLink, numVC)
		for v := range crs {
			crs[v] = link.NewCreditLink(fmt.Sprintf("%s.cr%d", name, v))
			eng.MustRegister(crs[v])
		}
		return l, crs
	}

	switches := make([]*Switch, 3)
	for n := 0; n < 3; n++ {
		var vcmap VCMap
		if dateline && n == 2 {
			vcmap = Dateline(0) // the link 2->0 is output port 0 of switch 2
		}
		sw, err := New(Config{
			Name: fmt.Sprintf("vs%d", n), Node: topology.NodeID(n),
			NumIn: 2, NumOut: 2, NumVC: numVC, BufDepth: bufDepth,
			Arb: arb.RoundRobin, Table: table, VCMap: vcmap,
		})
		if err != nil {
			return nil, nil, err
		}
		switches[n] = sw
	}
	for n := 0; n < 3; n++ {
		l, crs := wire(fmt.Sprintf("ring%d", n))
		if err := switches[n].ConnectOutput(0, l, crs, switches[(n+1)%3].BufDepth()); err != nil {
			return nil, nil, err
		}
		if err := switches[(n+1)%3].ConnectInput(0, l, crs); err != nil {
			return nil, nil, err
		}
	}
	// One flit pool across the ring: sources acquire from per-endpoint
	// shards, sinks release by source — the same explicit-ownership
	// datapath as the main platform. (In the deliberately deadlocked
	// wormhole configuration, stuck flits simply stay live.)
	pool := flit.NewPool()
	var sinks []*Sink
	for n := 0; n < 3; n++ {
		l, crs := wire(fmt.Sprintf("inj%d", n))
		if err := switches[n].ConnectInput(1, l, crs); err != nil {
			return nil, nil, err
		}
		planned := make([]flit.Packet, perSource)
		for i := range planned {
			planned[i] = flit.Packet{Dst: flit.EndpointID(100 + (n+2)%3), Len: pktLen}
		}
		src, err := NewSource(fmt.Sprintf("src%d", n), flit.EndpointID(n), l, crs[0], bufDepth, planned)
		if err != nil {
			return nil, nil, err
		}
		src.UseShard(pool.Shard(fmt.Sprintf("src%d", n), flit.EndpointID(n)))
		eng.MustRegister(src)

		sl, scrs := wire(fmt.Sprintf("ej%d", n))
		if err := switches[n].ConnectOutput(1, sl, scrs, 4); err != nil {
			return nil, nil, err
		}
		snk, err := NewSink(fmt.Sprintf("snk%d", n), flit.EndpointID(100+n), sl, scrs, uint64(perSource))
		if err != nil {
			return nil, nil, err
		}
		snk.UsePool(pool)
		sinks = append(sinks, snk)
		eng.MustRegister(snk)
	}
	for _, sw := range switches {
		if err := sw.CheckWired(); err != nil {
			return nil, nil, err
		}
		eng.MustRegister(sw)
	}
	return eng, sinks, nil
}
