package vcswitch

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/link"
)

// Source is a minimal traffic source for virtual-channel networks: it
// injects a fixed plan of packets on VC 0, one flit per cycle under
// credit flow control. It is an engine component.
type Source struct {
	name    string
	ep      flit.EndpointID
	out     *link.Link
	credIn  *link.CreditLink // VC 0 credits
	credits int
	shard   *flit.Shard

	plan    []flit.Packet
	planIdx int
	// ring holds the flits of the packet being serialized, in a fixed
	// ring sized for the longest planned packet (no slice-walk, no
	// retained pointers).
	ring  []*flit.Flit
	head  int
	count int
	seq   uint64

	flitsSent   uint64
	packetsSent uint64
}

// NewSource builds a source. credIn must be the VC-0 credit wire of the
// switch input port it feeds; initialCredits its per-VC buffer depth.
// Zero-length plan packets are rejected: they would frame no tail flit.
func NewSource(name string, ep flit.EndpointID, out *link.Link, credIn *link.CreditLink, initialCredits int, plan []flit.Packet) (*Source, error) {
	if name == "" || out == nil || credIn == nil {
		return nil, fmt.Errorf("vcswitch: source %q bad wiring", name)
	}
	if initialCredits < 1 {
		return nil, fmt.Errorf("vcswitch: source %q with %d credits", name, initialCredits)
	}
	maxLen := 1
	for i, p := range plan {
		if p.Len == 0 {
			return nil, fmt.Errorf("vcswitch: source %q plan packet %d has zero length", name, i)
		}
		if int(p.Len) > maxLen {
			maxLen = int(p.Len)
		}
	}
	return &Source{
		name: name, ep: ep, out: out, credIn: credIn,
		credits: initialCredits, plan: plan,
		ring: make([]*flit.Flit, maxLen),
	}, nil
}

// UseShard makes the source acquire flits from a pool shard instead of
// the heap. Set it before the first cycle.
func (s *Source) UseShard(sh *flit.Shard) { s.shard = sh }

// ComponentName implements engine.Component.
func (s *Source) ComponentName() string { return s.name }

// Tick implements engine.Component.
func (s *Source) Tick(cycle uint64) {
	s.credits += int(s.credIn.Take())
	if s.count == 0 && s.planIdx < len(s.plan) {
		p := s.plan[s.planIdx]
		s.planIdx++
		p.ID = flit.MakePacketID(s.ep, s.seq)
		p.Src = s.ep
		p.BirthCycle = cycle
		s.seq++
		for i := uint16(0); i < p.Len; i++ {
			f := s.shard.Acquire()
			p.Fill(f, i)
			s.ring[(s.head+s.count)%len(s.ring)] = f
			s.count++
		}
	}
	if s.count == 0 || s.credits == 0 || s.out.Busy() {
		return
	}
	f := s.ring[s.head]
	s.ring[s.head] = nil
	s.head = (s.head + 1) % len(s.ring)
	s.count--
	f.InjectCycle = cycle
	f.VC = 0
	f.Check = f.Checksum()
	if err := s.out.Send(f); err != nil {
		panic(fmt.Sprintf("vcswitch: source %s: %v", s.name, err))
	}
	s.credits--
	s.flitsSent++
	if f.Kind.IsTail() {
		s.packetsSent++
	}
}

// Commit implements engine.Component.
func (s *Source) Commit(cycle uint64) {}

// Done implements engine.Stopper.
func (s *Source) Done() bool { return s.planIdx >= len(s.plan) && s.count == 0 }

// NextWake implements engine.Quiescable: the source is quiet only once
// its plan is exhausted and serialized (it expands the next planned
// packet as soon as the ring drains, so it is busy until then).
// Uncollected credits accumulate on the wire.
func (s *Source) NextWake(cycle uint64) (uint64, bool) {
	return ^uint64(0), s.planIdx >= len(s.plan) && s.count == 0
}

// SkipIdle implements engine.Quiescable: a drained source's Tick only
// collects credits, which accumulate losslessly while quiet.
func (s *Source) SkipIdle(from, n uint64) {}

// Sent returns flits and packets injected.
func (s *Source) Sent() (flits, packets uint64) { return s.flitsSent, s.packetsSent }

// PlanLen returns the number of planned packets.
func (s *Source) PlanLen() int { return len(s.plan) }

// PlanPos returns how many planned packets have been expanded so far.
func (s *Source) PlanPos() int { return s.planIdx }

// Credits returns the current VC-0 credit balance.
func (s *Source) Credits() int { return s.credits }

// Sink is a minimal traffic sink for virtual-channel networks: it
// consumes one flit per cycle, returns a credit on the flit's VC, and
// reassembles packets (flits of different packets interleave on the
// physical channel — that is the point of VCs).
type Sink struct {
	name   string
	ep     flit.EndpointID
	in     *link.Link
	credUp []*link.CreditLink // per VC
	asm    *flit.Assembler
	pool   *flit.Pool
	expect uint64

	packets uint64
	flits   uint64
	// Order records the owning packet of every flit in arrival order
	// (interleaving evidence for tests).
	Order []flit.PacketID
}

// NewSink builds a sink; credUp must hold one credit wire per VC.
func NewSink(name string, ep flit.EndpointID, in *link.Link, credUp []*link.CreditLink, expect uint64) (*Sink, error) {
	if name == "" || in == nil || len(credUp) == 0 {
		return nil, fmt.Errorf("vcswitch: sink %q bad wiring", name)
	}
	for _, c := range credUp {
		if c == nil {
			return nil, fmt.Errorf("vcswitch: sink %q nil credit wire", name)
		}
	}
	return &Sink{
		name: name, ep: ep, in: in,
		credUp: append([]*link.CreditLink(nil), credUp...),
		asm:    flit.NewAssembler(), expect: expect,
	}, nil
}

// UsePool makes the sink release consumed flits back to a pool. Set it
// before the first cycle.
func (k *Sink) UsePool(p *flit.Pool) { k.pool = p }

// ComponentName implements engine.Component.
func (k *Sink) ComponentName() string { return k.name }

// Tick implements engine.Component.
func (k *Sink) Tick(cycle uint64) {
	f := k.in.Take()
	if f == nil {
		return
	}
	if int(f.VC) >= len(k.credUp) {
		panic(fmt.Sprintf("vcswitch: sink %s flit on VC %d", k.name, f.VC))
	}
	k.credUp[f.VC].Send(1)
	if f.Dst != k.ep {
		panic(fmt.Sprintf("vcswitch: sink %s got flit for %d", k.name, f.Dst))
	}
	k.flits++
	k.Order = append(k.Order, f.Packet)
	_, done, err := k.asm.Push(f)
	if err != nil {
		panic(fmt.Sprintf("vcswitch: sink %s: %v", k.name, err))
	}
	if done {
		k.packets++
	}
	k.pool.Release(f)
}

// Commit implements engine.Component.
func (k *Sink) Commit(cycle uint64) {}

// Done implements engine.Stopper.
func (k *Sink) Done() bool { return k.expect > 0 && k.packets >= k.expect }

// NextWake implements engine.Quiescable: quiet when nothing is
// committed on the input wire; the upstream switch's Send arms it.
func (k *Sink) NextWake(cycle uint64) (uint64, bool) {
	return ^uint64(0), k.in.Peek() == nil
}

// SkipIdle implements engine.Quiescable: an empty-input Tick is a pure
// no-op.
func (k *Sink) SkipIdle(from, n uint64) {}

// Received returns flits and packets delivered.
func (k *Sink) Received() (flits, packets uint64) { return k.flits, k.packets }

// Expect returns the packet count after which the sink reports done
// (0 = never).
func (k *Sink) Expect() uint64 { return k.expect }

// NumVC returns the number of virtual channels the sink returns credits
// on.
func (k *Sink) NumVC() int { return len(k.credUp) }
