package vcswitch

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/link"
)

// Source is a minimal traffic source for virtual-channel networks: it
// injects a fixed plan of packets on VC 0, one flit per cycle under
// credit flow control. It is an engine component.
type Source struct {
	name    string
	ep      flit.EndpointID
	out     *link.Link
	credIn  *link.CreditLink // VC 0 credits
	credits int

	plan  []flit.Packet
	queue []*flit.Flit
	seq   uint64

	flitsSent   uint64
	packetsSent uint64
}

// NewSource builds a source. credIn must be the VC-0 credit wire of the
// switch input port it feeds; initialCredits its per-VC buffer depth.
func NewSource(name string, ep flit.EndpointID, out *link.Link, credIn *link.CreditLink, initialCredits int, plan []flit.Packet) (*Source, error) {
	if name == "" || out == nil || credIn == nil {
		return nil, fmt.Errorf("vcswitch: source %q bad wiring", name)
	}
	if initialCredits < 1 {
		return nil, fmt.Errorf("vcswitch: source %q with %d credits", name, initialCredits)
	}
	return &Source{name: name, ep: ep, out: out, credIn: credIn, credits: initialCredits, plan: plan}, nil
}

// ComponentName implements engine.Component.
func (s *Source) ComponentName() string { return s.name }

// Tick implements engine.Component.
func (s *Source) Tick(cycle uint64) {
	s.credits += int(s.credIn.Take())
	if len(s.queue) == 0 && len(s.plan) > 0 {
		p := s.plan[0]
		s.plan = s.plan[1:]
		p.ID = flit.MakePacketID(s.ep, s.seq)
		p.Src = s.ep
		p.BirthCycle = cycle
		s.seq++
		s.queue = append(s.queue, p.Flits()...)
	}
	if len(s.queue) == 0 || s.credits == 0 || s.out.Busy() {
		return
	}
	f := s.queue[0]
	s.queue = s.queue[1:]
	f.InjectCycle = cycle
	f.VC = 0
	f.Check = f.Checksum()
	if err := s.out.Send(f); err != nil {
		panic(fmt.Sprintf("vcswitch: source %s: %v", s.name, err))
	}
	s.credits--
	s.flitsSent++
	if f.Kind.IsTail() {
		s.packetsSent++
	}
}

// Commit implements engine.Component.
func (s *Source) Commit(cycle uint64) {}

// Done implements engine.Stopper.
func (s *Source) Done() bool { return len(s.plan) == 0 && len(s.queue) == 0 }

// Sent returns flits and packets injected.
func (s *Source) Sent() (flits, packets uint64) { return s.flitsSent, s.packetsSent }

// Sink is a minimal traffic sink for virtual-channel networks: it
// consumes one flit per cycle, returns a credit on the flit's VC, and
// reassembles packets (flits of different packets interleave on the
// physical channel — that is the point of VCs).
type Sink struct {
	name   string
	ep     flit.EndpointID
	in     *link.Link
	credUp []*link.CreditLink // per VC
	asm    *flit.Assembler
	expect uint64

	packets uint64
	flits   uint64
	// Order records the owning packet of every flit in arrival order
	// (interleaving evidence for tests).
	Order []flit.PacketID
}

// NewSink builds a sink; credUp must hold one credit wire per VC.
func NewSink(name string, ep flit.EndpointID, in *link.Link, credUp []*link.CreditLink, expect uint64) (*Sink, error) {
	if name == "" || in == nil || len(credUp) == 0 {
		return nil, fmt.Errorf("vcswitch: sink %q bad wiring", name)
	}
	for _, c := range credUp {
		if c == nil {
			return nil, fmt.Errorf("vcswitch: sink %q nil credit wire", name)
		}
	}
	return &Sink{
		name: name, ep: ep, in: in,
		credUp: append([]*link.CreditLink(nil), credUp...),
		asm:    flit.NewAssembler(), expect: expect,
	}, nil
}

// ComponentName implements engine.Component.
func (k *Sink) ComponentName() string { return k.name }

// Tick implements engine.Component.
func (k *Sink) Tick(cycle uint64) {
	f := k.in.Take()
	if f == nil {
		return
	}
	if int(f.VC) >= len(k.credUp) {
		panic(fmt.Sprintf("vcswitch: sink %s flit on VC %d", k.name, f.VC))
	}
	k.credUp[f.VC].Send(1)
	if f.Dst != k.ep {
		panic(fmt.Sprintf("vcswitch: sink %s got flit for %d", k.name, f.Dst))
	}
	k.flits++
	k.Order = append(k.Order, f.Packet)
	_, done, err := k.asm.Push(f)
	if err != nil {
		panic(fmt.Sprintf("vcswitch: sink %s: %v", k.name, err))
	}
	if done {
		k.packets++
	}
}

// Commit implements engine.Component.
func (k *Sink) Commit(cycle uint64) {}

// Done implements engine.Stopper.
func (k *Sink) Done() bool { return k.expect > 0 && k.packets >= k.expect }

// Received returns flits and packets delivered.
func (k *Sink) Received() (flits, packets uint64) { return k.flits, k.packets }
