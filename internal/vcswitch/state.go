// Snapshot support for the virtual-channel network (DESIGN.md §13).
//
// The VC switch serializes its per-VC input FIFOs, credit counters,
// wormhole locks and route grants, the arbiter priority state, and the
// counters. Lock and route references are validated as a matched pair
// on restore: a lock entry (out, vc) -> (in, inVC) must be mirrored by
// route (in, inVC) -> (out, vc), which is the invariant VC allocation
// maintains. The minimal Source/Sink endpoints serialize their plan
// position, serialization ring, credit balances and arrival evidence.
package vcswitch

import (
	"fmt"

	"nocemu/internal/flit"
	"nocemu/internal/state"
)

// SaveState serializes the VC switch.
func (s *Switch) SaveState(w *state.Writer) {
	w.Int(s.cfg.NumIn)
	w.Int(s.cfg.NumOut)
	w.Int(s.cfg.NumVC)
	for r := range s.inBufs {
		s.inBufs[r].SaveState(w)
	}
	for i := range s.route {
		for v := range s.route[i] {
			w.Int(s.route[i][v].in)
			w.Int(s.route[i][v].vc)
		}
	}
	for o := 0; o < s.cfg.NumOut; o++ {
		for v := 0; v < s.cfg.NumVC; v++ {
			w.Int(s.credits[o][v])
			w.Int(s.lock[o][v].in)
			w.Int(s.lock[o][v].vc)
		}
		s.arbs[o].SaveState(w)
	}
	w.U64(s.stats.FlitsRouted)
	w.U64(s.stats.PacketsRouted)
	w.U64(s.stats.BlockedCycles)
}

// LoadState restores the VC switch.
func (s *Switch) LoadState(r *state.Reader) error {
	nIn, nOut, nVC := r.Int(), r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nIn != s.cfg.NumIn || nOut != s.cfg.NumOut || nVC != s.cfg.NumVC {
		return fmt.Errorf("vcswitch %s: snapshot is %dx%dx%dvc, built %dx%dx%dvc",
			s.cfg.Name, nIn, nOut, nVC, s.cfg.NumIn, s.cfg.NumOut, s.cfg.NumVC)
	}
	for i := range s.inBufs {
		if err := s.inBufs[i].LoadState(r); err != nil {
			return err
		}
	}
	for i := range s.route {
		for v := range s.route[i] {
			rt := vcRef{in: r.Int(), vc: r.Int()}
			if r.Err() == nil && rt != freeRef &&
				(rt.in < 0 || rt.in >= s.cfg.NumOut || rt.vc < 0 || rt.vc >= s.cfg.NumVC) {
				return fmt.Errorf("vcswitch %s: snapshot routes in%d.vc%d to out%d.vc%d", s.cfg.Name, i, v, rt.in, rt.vc)
			}
			s.route[i][v] = rt
		}
	}
	for o := 0; o < s.cfg.NumOut; o++ {
		for v := 0; v < s.cfg.NumVC; v++ {
			s.credits[o][v] = r.Int()
			lk := vcRef{in: r.Int(), vc: r.Int()}
			if r.Err() == nil && lk != freeRef &&
				(lk.in < 0 || lk.in >= s.cfg.NumIn || lk.vc < 0 || lk.vc >= s.cfg.NumVC) {
				return fmt.Errorf("vcswitch %s: snapshot locks out%d.vc%d to in%d.vc%d", s.cfg.Name, o, v, lk.in, lk.vc)
			}
			s.lock[o][v] = lk
		}
		if err := s.arbs[o].LoadState(r); err != nil {
			return fmt.Errorf("vcswitch %s: output %d arbiter: %w", s.cfg.Name, o, err)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	// Locks and route grants must mirror each other.
	for o := 0; o < s.cfg.NumOut; o++ {
		for v := 0; v < s.cfg.NumVC; v++ {
			lk := s.lock[o][v]
			if lk == freeRef {
				continue
			}
			if s.route[lk.in][lk.vc] != (vcRef{in: o, vc: v}) {
				return fmt.Errorf("vcswitch %s: snapshot lock out%d.vc%d owned by in%d.vc%d without matching route",
					s.cfg.Name, o, v, lk.in, lk.vc)
			}
		}
	}
	for r2 := range s.granted {
		s.granted[r2] = false
	}
	s.stats.FlitsRouted = r.U64()
	s.stats.PacketsRouted = r.U64()
	s.stats.BlockedCycles = r.U64()
	return r.Err()
}

// SaveState serializes the plan-driven source.
func (s *Source) SaveState(w *state.Writer) {
	w.Int(s.credits)
	w.Int(len(s.plan))
	w.Int(s.planIdx)
	w.Int(len(s.ring))
	w.Int(s.count)
	for i := 0; i < s.count; i++ {
		s.ring[(s.head+i)%len(s.ring)].SaveState(w)
	}
	w.U64(s.seq)
	w.U64(s.flitsSent)
	w.U64(s.packetsSent)
}

// LoadState restores the plan-driven source (the plan itself is
// configuration; only the replay position is state).
func (s *Source) LoadState(r *state.Reader) error {
	credits := r.Int()
	planLen := r.Int()
	planIdx := r.Int()
	capacity := r.Int()
	count := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if credits < 0 {
		return fmt.Errorf("vcswitch: source %s snapshot with %d credits", s.name, credits)
	}
	if planLen != len(s.plan) {
		return fmt.Errorf("vcswitch: source %s snapshot plans %d packets, built %d", s.name, planLen, len(s.plan))
	}
	if planIdx < 0 || planIdx > planLen {
		return fmt.Errorf("vcswitch: source %s snapshot plan position %d of %d", s.name, planIdx, planLen)
	}
	if capacity != len(s.ring) {
		return fmt.Errorf("vcswitch: source %s snapshot ring capacity %d, built %d", s.name, capacity, len(s.ring))
	}
	if count < 0 || count > capacity {
		return fmt.Errorf("vcswitch: source %s snapshot occupancy %d of %d", s.name, count, capacity)
	}
	clear(s.ring)
	s.credits = credits
	s.planIdx = planIdx
	s.head = 0
	s.count = count
	for i := 0; i < count; i++ {
		f := &flit.Flit{}
		if err := f.LoadState(r); err != nil {
			return err
		}
		s.ring[i] = f
	}
	s.seq = r.U64()
	s.flitsSent = r.U64()
	s.packetsSent = r.U64()
	return r.Err()
}

// SaveState serializes the sink.
func (k *Sink) SaveState(w *state.Writer) {
	w.U64(k.expect)
	w.U64(k.packets)
	w.U64(k.flits)
	w.Int(len(k.Order))
	for _, id := range k.Order {
		w.U64(uint64(id))
	}
	k.asm.SaveState(w)
}

// LoadState restores the sink.
func (k *Sink) LoadState(r *state.Reader) error {
	k.expect = r.U64()
	k.packets = r.U64()
	k.flits = r.U64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("vcswitch: sink %s snapshot with %d arrivals", k.name, n)
	}
	k.Order = k.Order[:0]
	for i := 0; i < n; i++ {
		k.Order = append(k.Order, flit.PacketID(r.U64()))
	}
	return k.asm.LoadState(r)
}
