// Package vcswitch implements a virtual-channel NoC switch — the
// framework's demonstration that the emulation platform can "emulate
// different types of NoC and compare their features" (the paper's HW
// part emulates "any NoC packet-switching intercommunication scheme").
//
// Each input port carries NumVC virtual channels, each with its own
// FIFO and its own credit stream; an output physical channel is shared
// by its NumVC output VCs, at most one flit per cycle. A packet claims
// one output VC per hop (VC allocation at the head flit, held until the
// tail), and a VCMap policy decides which VC the packet continues on —
// the hook for dateline schemes that make cyclic topologies
// deadlock-free, which TestDatelineBreaksRingDeadlock demonstrates
// against the plain wormhole switch's deadlock.
package vcswitch

import (
	"fmt"

	"nocemu/internal/arb"
	"nocemu/internal/buffer"
	"nocemu/internal/flit"
	"nocemu/internal/link"
	"nocemu/internal/probe"
	"nocemu/internal/routing"
	"nocemu/internal/topology"
)

// VCMap chooses the virtual channel a packet uses on its next hop.
// inVC is the VC the head flit arrived on; outPort is the chosen output
// port. A nil VCMap keeps inVC.
type VCMap func(f *flit.Flit, inVC, outPort int) int

// Dateline returns the classic ring dateline policy for the switch at
// the given node: packets that leave through datelinePort move (and
// stay) on VC 1; everything else keeps its VC. With two VCs this breaks
// the cyclic channel dependency of a unidirectional ring.
func Dateline(datelinePort int) VCMap {
	return func(f *flit.Flit, inVC, outPort int) int {
		if outPort == datelinePort {
			return 1
		}
		return inVC
	}
}

// Config parameterizes one virtual-channel switch.
type Config struct {
	Name          string
	Node          topology.NodeID
	NumIn, NumOut int
	// NumVC is the virtual channels per physical port (>= 1).
	NumVC int
	// BufDepth is the per-VC FIFO depth.
	BufDepth int
	// Arb arbitrates the output physical channel among (input, VC)
	// requestors.
	Arb arb.Policy
	// Table supplies route candidates (first candidate is used).
	Table *routing.Table
	// VCMap selects the outgoing VC per packet (nil keeps the VC).
	VCMap VCMap
}

// vcRef addresses one (port, vc) pair; in = -1 marks "free".
type vcRef struct {
	in, vc int
}

var freeRef = vcRef{in: -1, vc: -1}

// Stats snapshots a VC switch's counters.
type Stats struct {
	FlitsRouted   uint64
	PacketsRouted uint64
	// BlockedCycles counts head flits that could not advance (busy
	// output VC, no credit, or lost arbitration).
	BlockedCycles uint64
}

// Switch is a virtual-channel wormhole switch. It is an engine
// component; wire it with ConnectInput/ConnectOutput.
type Switch struct {
	cfg Config

	inBufs  []buffer.FIFO        // dense, flat [input*NumVC+vc]
	inLinks []*link.Link         // [input]
	credOut [][]*link.CreditLink // [input][vc] credits returned upstream
	outLink []*link.Link         // [output]
	credIn  [][]*link.CreditLink // [output][vc] credits from downstream
	credits [][]int              // [output][vc]
	lock    [][]vcRef            // [output][vc] -> owning (in, vc)
	route   [][]vcRef            // [input][vc] -> granted (outPort, outVC); -1 = unrouted
	arbs    []arb.Arbiter        // per output, over NumIn*NumVC requestors
	granted []bool               // scratch [input*vc]
	reqOut  int
	reqFn   arb.Requests

	wiredIn, wiredOut int
	stats             Stats

	// probe records route events tagged with the outgoing VC; nil when
	// tracing is off. The per-VC input buffers share it.
	probe *probe.Probe
}

// New validates the configuration and builds the switch.
func New(cfg Config) (*Switch, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("vcswitch: empty name")
	}
	if cfg.NumIn < 1 || cfg.NumOut < 1 {
		return nil, fmt.Errorf("vcswitch %s: %d inputs, %d outputs", cfg.Name, cfg.NumIn, cfg.NumOut)
	}
	if cfg.NumVC < 1 || cfg.NumVC > 256 {
		return nil, fmt.Errorf("vcswitch %s: %d virtual channels", cfg.Name, cfg.NumVC)
	}
	if cfg.BufDepth < 1 {
		return nil, fmt.Errorf("vcswitch %s: buffer depth %d", cfg.Name, cfg.BufDepth)
	}
	if cfg.Table == nil {
		return nil, fmt.Errorf("vcswitch %s: nil routing table", cfg.Name)
	}
	s := &Switch{cfg: cfg}
	s.inBufs = make([]buffer.FIFO, cfg.NumIn*cfg.NumVC)
	s.credOut = make([][]*link.CreditLink, cfg.NumIn)
	s.route = make([][]vcRef, cfg.NumIn)
	s.inLinks = make([]*link.Link, cfg.NumIn)
	for i := 0; i < cfg.NumIn; i++ {
		s.route[i] = make([]vcRef, cfg.NumVC)
		for v := 0; v < cfg.NumVC; v++ {
			buffer.MustInit(s.buf(i, v), fmt.Sprintf("%s/in%d.vc%d", cfg.Name, i, v), cfg.BufDepth)
			s.route[i][v] = freeRef
		}
	}
	s.outLink = make([]*link.Link, cfg.NumOut)
	s.credIn = make([][]*link.CreditLink, cfg.NumOut)
	s.credits = make([][]int, cfg.NumOut)
	s.lock = make([][]vcRef, cfg.NumOut)
	s.arbs = make([]arb.Arbiter, cfg.NumOut)
	for o := 0; o < cfg.NumOut; o++ {
		s.credits[o] = make([]int, cfg.NumVC)
		s.lock[o] = make([]vcRef, cfg.NumVC)
		for v := 0; v < cfg.NumVC; v++ {
			s.lock[o][v] = freeRef
		}
		a, err := arb.New(cfg.Arb, cfg.NumIn*cfg.NumVC)
		if err != nil {
			return nil, fmt.Errorf("vcswitch %s: %w", cfg.Name, err)
		}
		s.arbs[o] = a
	}
	s.granted = make([]bool, cfg.NumIn*cfg.NumVC)
	s.reqFn = func(r int) bool {
		i, v := r/s.cfg.NumVC, r%s.cfg.NumVC
		if s.granted[r] || s.buf(i, v).Peek() == nil {
			return false
		}
		rt := s.route[i][v]
		return rt.in == s.reqOut && s.credits[rt.in][rt.vc] > 0
	}
	return s, nil
}

// buf returns input i's FIFO for virtual channel v. The buffers live
// flat in one value slice so the per-cycle sweeps walk contiguous
// memory; the flat index matches the granted/arbiter requestor index.
func (s *Switch) buf(i, v int) *buffer.FIFO { return &s.inBufs[i*s.cfg.NumVC+v] }

// ComponentName implements engine.Component.
func (s *Switch) ComponentName() string { return s.cfg.Name }

// BufDepth returns the per-VC buffer depth (upstream initial credits).
func (s *Switch) BufDepth() int { return s.cfg.BufDepth }

// NumVC returns the virtual channel count.
func (s *Switch) NumVC() int { return s.cfg.NumVC }

// ConnectInput wires input i: one flit link plus one credit wire per
// VC.
func (s *Switch) ConnectInput(i int, in *link.Link, creditBack []*link.CreditLink) error {
	if i < 0 || i >= s.cfg.NumIn {
		return fmt.Errorf("vcswitch %s: input %d out of range", s.cfg.Name, i)
	}
	if s.inLinks[i] != nil {
		return fmt.Errorf("vcswitch %s: input %d already wired", s.cfg.Name, i)
	}
	if in == nil || len(creditBack) != s.cfg.NumVC {
		return fmt.Errorf("vcswitch %s: input %d needs a link and %d credit wires", s.cfg.Name, i, s.cfg.NumVC)
	}
	for _, c := range creditBack {
		if c == nil {
			return fmt.Errorf("vcswitch %s: input %d nil credit wire", s.cfg.Name, i)
		}
	}
	s.inLinks[i] = in
	s.credOut[i] = append([]*link.CreditLink(nil), creditBack...)
	s.wiredIn++
	return nil
}

// ConnectOutput wires output o: one flit link plus one credit wire and
// initial credit count per VC.
func (s *Switch) ConnectOutput(o int, out *link.Link, creditIn []*link.CreditLink, initialCredits int) error {
	if o < 0 || o >= s.cfg.NumOut {
		return fmt.Errorf("vcswitch %s: output %d out of range", s.cfg.Name, o)
	}
	if s.outLink[o] != nil {
		return fmt.Errorf("vcswitch %s: output %d already wired", s.cfg.Name, o)
	}
	if out == nil || len(creditIn) != s.cfg.NumVC {
		return fmt.Errorf("vcswitch %s: output %d needs a link and %d credit wires", s.cfg.Name, o, s.cfg.NumVC)
	}
	if initialCredits < 1 {
		return fmt.Errorf("vcswitch %s: output %d with %d credits", s.cfg.Name, o, initialCredits)
	}
	s.outLink[o] = out
	s.credIn[o] = append([]*link.CreditLink(nil), creditIn...)
	for v := 0; v < s.cfg.NumVC; v++ {
		s.credits[o][v] = initialCredits
	}
	s.wiredOut++
	return nil
}

// CheckWired verifies all ports are connected.
func (s *Switch) CheckWired() error {
	if s.wiredIn != s.cfg.NumIn || s.wiredOut != s.cfg.NumOut {
		return fmt.Errorf("vcswitch %s: %d/%d inputs, %d/%d outputs wired",
			s.cfg.Name, s.wiredIn, s.cfg.NumIn, s.wiredOut, s.cfg.NumOut)
	}
	return nil
}

// Tick implements engine.Component.
func (s *Switch) Tick(cycle uint64) {
	// Collect per-VC credits.
	for o := range s.credIn {
		for v, c := range s.credIn[o] {
			s.credits[o][v] += int(c.Take())
		}
	}
	// Accept arrivals into the tagged VC buffer.
	for i, in := range s.inLinks {
		if f := in.Take(); f != nil {
			v := int(f.VC)
			if v >= s.cfg.NumVC {
				panic(fmt.Sprintf("vcswitch %s: flit on VC %d of %d", s.cfg.Name, v, s.cfg.NumVC))
			}
			if err := s.buf(i, v).Push(f); err != nil {
				panic(fmt.Sprintf("vcswitch %s: %v", s.cfg.Name, err))
			}
		}
	}
	// Route computation + VC allocation for new heads.
	for i := 0; i < s.cfg.NumIn; i++ {
		for v := 0; v < s.cfg.NumVC; v++ {
			f := s.buf(i, v).Peek()
			if f == nil || s.route[i][v] != freeRef {
				continue
			}
			if !f.Kind.IsHead() {
				panic(fmt.Sprintf("vcswitch %s: unrouted %s flit at head", s.cfg.Name, f.Kind))
			}
			cands, err := s.cfg.Table.Lookup(s.cfg.Node, f.Dst)
			if err != nil {
				panic(fmt.Sprintf("vcswitch %s: %v", s.cfg.Name, err))
			}
			outPort := cands[0]
			outVC := v
			if s.cfg.VCMap != nil {
				outVC = s.cfg.VCMap(f, v, outPort)
			}
			if outVC < 0 || outVC >= s.cfg.NumVC {
				panic(fmt.Sprintf("vcswitch %s: VC map returned %d", s.cfg.Name, outVC))
			}
			// VC allocation: claim the output VC if free.
			if s.lock[outPort][outVC] != freeRef {
				continue // try again next cycle; counted as blocked below
			}
			s.lock[outPort][outVC] = vcRef{in: i, vc: v}
			s.route[i][v] = vcRef{in: outPort, vc: outVC}
		}
	}
	// Switch allocation: one flit per output physical channel.
	for r := range s.granted {
		s.granted[r] = false
	}
	for o, out := range s.outLink {
		s.reqOut = o
		r, ok := s.arbs[o].Grant(s.reqFn)
		if !ok || out.Busy() {
			continue
		}
		i, v := r/s.cfg.NumVC, r%s.cfg.NumVC
		rt := s.route[i][v]
		f := s.buf(i, v).Pop()
		if f == nil {
			panic(fmt.Sprintf("vcswitch %s: pop failed after grant", s.cfg.Name))
		}
		f.VC = uint8(rt.vc)
		if err := out.Send(f); err != nil {
			panic(fmt.Sprintf("vcswitch %s: %v", s.cfg.Name, err))
		}
		s.credits[o][rt.vc]--
		s.credOut[i][v].Send(1)
		s.granted[r] = true
		s.stats.FlitsRouted++
		s.probe.FlitRoute(cycle, uint64(f.Packet), uint16(f.Src), uint16(f.Dst), f.Index, uint16(rt.vc), uint32(i), uint32(o))
		if f.Kind.IsTail() {
			s.stats.PacketsRouted++
			s.lock[o][rt.vc] = freeRef
			s.route[i][v] = freeRef
		}
	}
	// Blocked accounting: any buffered head that did not move. The flat
	// buffer index is the requestor index, so granted lines up directly.
	for r := range s.inBufs {
		q := &s.inBufs[r]
		if q.Peek() != nil && !s.granted[r] {
			q.MarkBlocked()
			s.stats.BlockedCycles++
		}
	}
}

// Commit implements engine.Component.
func (s *Switch) Commit(cycle uint64) {
	for r := range s.inBufs {
		s.inBufs[r].Commit(cycle)
	}
}

// NextWake implements engine.Quiescable: quiet when every VC buffer is
// empty and no flit is committed on an input wire. VC allocations
// (lock/route) may persist; they are frozen until an input arms the
// switch. Per-VC credits accumulate losslessly on their wires.
func (s *Switch) NextWake(cycle uint64) (uint64, bool) {
	for r := range s.inBufs {
		if !s.inBufs[r].Empty() {
			return 0, false
		}
	}
	for _, in := range s.inLinks {
		if in.Peek() != nil {
			return 0, false
		}
	}
	return ^uint64(0), true
}

// SkipIdle implements engine.Quiescable: a quiet cycle only advances
// the VC buffers' occupancy statistics.
func (s *Switch) SkipIdle(from, n uint64) {
	for r := range s.inBufs {
		s.inBufs[r].SkipIdle(n)
	}
}

// SetProbe attaches the tracing probe (nil disables tracing) and shares
// it with the per-VC input buffers.
func (s *Switch) SetProbe(p *probe.Probe) {
	s.probe = p
	for r := range s.inBufs {
		s.inBufs[r].SetProbe(p)
	}
}

// Stats returns the counters.
func (s *Switch) Stats() Stats { return s.stats }
