package vcswitch_test

import (
	"fmt"
	"testing"

	"nocemu/internal/arb"
	"nocemu/internal/engine"
	"nocemu/internal/flit"
	"nocemu/internal/link"
	"nocemu/internal/routing"
	"nocemu/internal/topology"
	"nocemu/internal/traffic"
	"nocemu/internal/vcswitch"

	"nocemu/internal/platform"
	"nocemu/internal/receptor"
)

func TestNewValidation(t *testing.T) {
	tb := routing.NewTable(1)
	bad := []vcswitch.Config{
		{Name: "", NumIn: 1, NumOut: 1, NumVC: 1, BufDepth: 1, Arb: arb.RoundRobin, Table: tb},
		{Name: "s", NumIn: 0, NumOut: 1, NumVC: 1, BufDepth: 1, Arb: arb.RoundRobin, Table: tb},
		{Name: "s", NumIn: 1, NumOut: 0, NumVC: 1, BufDepth: 1, Arb: arb.RoundRobin, Table: tb},
		{Name: "s", NumIn: 1, NumOut: 1, NumVC: 0, BufDepth: 1, Arb: arb.RoundRobin, Table: tb},
		{Name: "s", NumIn: 1, NumOut: 1, NumVC: 1, BufDepth: 0, Arb: arb.RoundRobin, Table: tb},
		{Name: "s", NumIn: 1, NumOut: 1, NumVC: 1, BufDepth: 1, Arb: arb.RoundRobin, Table: nil},
		{Name: "s", NumIn: 1, NumOut: 1, NumVC: 1, BufDepth: 1, Arb: arb.Policy("x"), Table: tb},
	}
	for i, cfg := range bad {
		if _, err := vcswitch.New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	s, err := vcswitch.New(vcswitch.Config{Name: "s", NumIn: 2, NumOut: 2, NumVC: 2, BufDepth: 2, Arb: arb.RoundRobin, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVC() != 2 || s.BufDepth() != 2 {
		t.Error("accessors wrong")
	}
	if err := s.CheckWired(); err == nil {
		t.Error("unwired switch passed CheckWired")
	}
}

// wireVC creates a flit link plus one credit wire per VC, registering
// everything with the engine.
func wireVC(eng *engine.Engine, name string, numVC int) (*link.Link, []*link.CreditLink) {
	l := link.NewLink(name)
	eng.MustRegister(l)
	crs := make([]*link.CreditLink, numVC)
	for v := range crs {
		crs[v] = link.NewCreditLink(fmt.Sprintf("%s.cr%d", name, v))
		eng.MustRegister(crs[v])
	}
	return l, crs
}

func plan(dst flit.EndpointID, n int, length uint16) []flit.Packet {
	out := make([]flit.Packet, n)
	for i := range out {
		out[i] = flit.Packet{Dst: dst, Len: length}
	}
	return out
}

// buildShared wires two sources through one 2-in/1-out VC switch into a
// sink, with a VC map that puts each source on its own output VC.
func buildShared(t *testing.T, numVC int, vcmap vcswitch.VCMap, perSrc int, length uint16) (*engine.Engine, *vcswitch.Sink, *vcswitch.Switch) {
	t.Helper()
	eng := engine.New()
	tb := routing.NewTable(1)
	if err := tb.Set(0, 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	sw, err := vcswitch.New(vcswitch.Config{
		Name: "vs0", Node: 0, NumIn: 2, NumOut: 1, NumVC: numVC,
		BufDepth: 4, Arb: arb.RoundRobin, Table: tb, VCMap: vcmap,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		l, crs := wireVC(eng, fmt.Sprintf("inj%d", i), numVC)
		if err := sw.ConnectInput(i, l, crs); err != nil {
			t.Fatal(err)
		}
		src, err := vcswitch.NewSource(fmt.Sprintf("src%d", i), flit.EndpointID(i+1), l, crs[0],
			sw.BufDepth(), plan(100, perSrc, length))
		if err != nil {
			t.Fatal(err)
		}
		eng.MustRegister(src)
	}
	outL, outCrs := wireVC(eng, "out", numVC)
	if err := sw.ConnectOutput(0, outL, outCrs, 4); err != nil {
		t.Fatal(err)
	}
	snk, err := vcswitch.NewSink("snk", 100, outL, outCrs, uint64(2*perSrc))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.CheckWired(); err != nil {
		t.Fatal(err)
	}
	eng.MustRegister(sw)
	eng.MustRegister(snk)
	return eng, snk, sw
}

func TestVCDelivery(t *testing.T) {
	eng, snk, sw := buildShared(t, 2, nil, 10, 4)
	if _, stopped := eng.RunUntil(10_000); !stopped {
		t.Fatal("did not finish")
	}
	flits, packets := snk.Received()
	if packets != 20 || flits != 80 {
		t.Errorf("received %d packets / %d flits", packets, flits)
	}
	st := sw.Stats()
	if st.FlitsRouted != 80 || st.PacketsRouted != 20 {
		t.Errorf("switch stats = %+v", st)
	}
}

func TestVCInterleavingOnSharedChannel(t *testing.T) {
	// Source endpoints 1 and 2 get distinct output VCs: their long
	// packets must interleave flit-by-flit on the shared physical
	// channel — impossible on the plain wormhole switch.
	bySrc := func(f *flit.Flit, inVC, outPort int) int {
		return int(f.Src) - 1
	}
	eng, snk, _ := buildShared(t, 2, bySrc, 4, 16)
	if _, stopped := eng.RunUntil(10_000); !stopped {
		t.Fatal("did not finish")
	}
	// Look for a switch of owning packet mid-stream where neither
	// packet is finished: direct evidence of interleaving.
	seen := map[flit.PacketID]int{}
	interleaved := false
	for _, id := range snk.Order {
		seen[id]++
		for other, cnt := range seen {
			if other != id && cnt > 0 && cnt < 16 && seen[id] > 0 && seen[id] < 16 {
				interleaved = true
			}
		}
	}
	if !interleaved {
		t.Error("no flit interleaving observed across VCs")
	}
	if _, packets := snk.Received(); packets != 8 {
		t.Errorf("packets = %d", packets)
	}
}

func TestWormholeDoesNotInterleaveBaseline(t *testing.T) {
	// Sanity check of the comparison claim: on the single-VC switch the
	// same traffic never interleaves packets on one output.
	eng, snk, _ := buildShared(t, 1, nil, 4, 16)
	if _, stopped := eng.RunUntil(10_000); !stopped {
		t.Fatal("did not finish")
	}
	count := map[flit.PacketID]int{}
	var open flit.PacketID
	for _, id := range snk.Order {
		if count[open] > 0 && count[open] < 16 && id != open {
			t.Fatal("single-VC switch interleaved packets")
		}
		count[id]++
		open = id
	}
}

// TestDatelineBreaksRingDeadlock is the headline VC demonstration: the
// cyclic ring that deadlocks a single-VC wormhole network completes
// with two virtual channels and a dateline.
func TestDatelineBreaksRingDeadlock(t *testing.T) {
	// Single VC: wedges (long packets, tiny buffers, cyclic routes).
	eng1, sinks1, err := vcswitch.Ring3(1, false, 10, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := eng1.RunUntil(50_000); stopped {
		t.Fatal("single-VC ring unexpectedly completed")
	}
	var delivered uint64
	for _, s := range sinks1 {
		_, p := s.Received()
		delivered += p
	}
	if delivered >= 30 {
		t.Fatalf("single-VC ring delivered everything (%d)", delivered)
	}

	// Two VCs + dateline: completes.
	eng2, sinks2, err := vcswitch.Ring3(2, true, 10, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := eng2.RunUntil(50_000); !stopped {
		t.Fatal("dateline ring did not complete")
	}
	for i, s := range sinks2 {
		if _, p := s.Received(); p != 10 {
			t.Errorf("sink %d received %d packets", i, p)
		}
	}
}

// TestVCMatchesWormholeOnPaperTraffic cross-checks the VC switch at
// NumVC=1 against the production wormhole switch on a shared 2:1
// contention pattern: same deliveries.
func TestVCMatchesWormholeOnPaperTraffic(t *testing.T) {
	// VC switch, 1 VC.
	engV, snkV, _ := buildShared(t, 1, nil, 25, 5)
	if _, stopped := engV.RunUntil(20_000); !stopped {
		t.Fatal("vc run did not finish")
	}
	fV, pV := snkV.Received()

	// Plain wormhole switch, same traffic, via the platform builder.
	topo, err := topology.New("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSink(100, 0); err != nil {
		t.Fatal(err)
	}
	mk := func(ep flit.EndpointID) platform.TGSpec {
		return platform.TGSpec{
			Endpoint: ep, Model: platform.ModelUniform, Limit: 25,
			Uniform: &traffic.UniformConfig{
				LenMin: 5, LenMax: 5, GapMin: 0, GapMax: 0,
				Dst: traffic.DstConfig{Policy: traffic.DstFixed, Dsts: []flit.EndpointID{100}},
			},
		}
	}
	p, err := platform.Build(platform.Config{
		Name: "wh", Topology: topo, SwitchBufDepth: 4,
		TGs: []platform.TGSpec{mk(1), mk(2)},
		TRs: []platform.TRSpec{{Endpoint: 100, Mode: receptor.Stochastic, ExpectPackets: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := p.Run(20_000); !stopped {
		t.Fatal("wormhole run did not finish")
	}
	if pV != 50 || p.Totals().PacketsReceived != 50 {
		t.Errorf("packets: vc=%d wormhole=%d", pV, p.Totals().PacketsReceived)
	}
	if fV != 250 || p.Totals().FlitsReceived != 250 {
		t.Errorf("flits: vc=%d wormhole=%d", fV, p.Totals().FlitsReceived)
	}
}

func TestEndpointValidation(t *testing.T) {
	l := link.NewLink("l")
	cr := link.NewCreditLink("c")
	if _, err := vcswitch.NewSource("", 0, l, cr, 2, nil); err == nil {
		t.Error("empty source name accepted")
	}
	if _, err := vcswitch.NewSource("s", 0, nil, cr, 2, nil); err == nil {
		t.Error("nil source link accepted")
	}
	if _, err := vcswitch.NewSource("s", 0, l, nil, 2, nil); err == nil {
		t.Error("nil source credit accepted")
	}
	if _, err := vcswitch.NewSource("s", 0, l, cr, 0, nil); err == nil {
		t.Error("zero credits accepted")
	}
	if _, err := vcswitch.NewSink("", 9, l, []*link.CreditLink{cr}, 1); err == nil {
		t.Error("empty sink name accepted")
	}
	if _, err := vcswitch.NewSink("k", 9, nil, []*link.CreditLink{cr}, 1); err == nil {
		t.Error("nil sink link accepted")
	}
	if _, err := vcswitch.NewSink("k", 9, l, nil, 1); err == nil {
		t.Error("no sink credit wires accepted")
	}
	if _, err := vcswitch.NewSink("k", 9, l, []*link.CreditLink{nil}, 1); err == nil {
		t.Error("nil sink credit wire accepted")
	}
	src, err := vcswitch.NewSource("s", 0, l, cr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.ComponentName() != "s" || !src.Done() {
		t.Error("empty-plan source not done")
	}
	src.Commit(0)
}

func TestConnectErrors(t *testing.T) {
	tb := routing.NewTable(1)
	s, err := vcswitch.New(vcswitch.Config{Name: "s", NumIn: 1, NumOut: 1, NumVC: 2, BufDepth: 2, Arb: arb.RoundRobin, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	l := link.NewLink("l")
	one := []*link.CreditLink{link.NewCreditLink("c0")}
	two := []*link.CreditLink{link.NewCreditLink("c0"), link.NewCreditLink("c1")}
	if err := s.ConnectInput(5, l, two); err == nil {
		t.Error("out-of-range input accepted")
	}
	if err := s.ConnectInput(0, l, one); err == nil {
		t.Error("wrong credit count accepted")
	}
	if err := s.ConnectInput(0, l, []*link.CreditLink{nil, nil}); err == nil {
		t.Error("nil credit wires accepted")
	}
	if err := s.ConnectInput(0, l, two); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectInput(0, l, two); err == nil {
		t.Error("double input wiring accepted")
	}
	ol := link.NewLink("ol")
	otwo := []*link.CreditLink{link.NewCreditLink("o0"), link.NewCreditLink("o1")}
	if err := s.ConnectOutput(9, ol, otwo, 2); err == nil {
		t.Error("out-of-range output accepted")
	}
	if err := s.ConnectOutput(0, ol, otwo[:1], 2); err == nil {
		t.Error("wrong output credit count accepted")
	}
	if err := s.ConnectOutput(0, ol, otwo, 0); err == nil {
		t.Error("zero credits accepted")
	}
	if err := s.ConnectOutput(0, ol, otwo, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectOutput(0, ol, otwo, 2); err == nil {
		t.Error("double output wiring accepted")
	}
	if err := s.CheckWired(); err != nil {
		t.Errorf("wired switch rejected: %v", err)
	}
}

func TestRing3Validation(t *testing.T) {
	if _, _, err := vcswitch.Ring3(1, false, 0, 1, 2); err == nil {
		t.Error("zero packets accepted")
	}
	if _, _, err := vcswitch.Ring3(1, false, 1, 0, 2); err == nil {
		t.Error("zero length accepted")
	}
	// Default buffer depth kicks in for bufDepth < 1.
	eng, sinks, err := vcswitch.Ring3(2, true, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := eng.RunUntil(1_000); !done {
		t.Error("tiny dateline run did not finish")
	}
	if len(sinks) != 3 {
		t.Errorf("sinks = %d", len(sinks))
	}
}
