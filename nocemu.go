// Package nocemu is a complete network-on-chip emulation framework in
// Go — a reproduction of "A Complete Network-On-Chip Emulation
// Framework" (Genko, Atienza, De Micheli, Mendias, Hermida, Catthoor —
// DATE 2005).
//
// The framework emulates packet-switched NoCs built from
// parameterizable wormhole switches (number of inputs, number of
// outputs, buffer size), driven by stochastic (uniform, burst/Markov,
// Poisson) or trace-driven traffic generators and observed by
// stochastic (histograms, running time) or trace-driven (latency
// analyzer, congestion counter) traffic receptors. A memory-mapped bus
// system (4 internal buses x 1024 devices) exposes every device's
// parameter and statistics registers to a control processor, so
// emulation parameters change in software with no platform rebuild —
// the paper's answer to hardware re-synthesis cost.
//
// Three interchangeable backends run the same platform:
//
//   - the emulation engine (static two-phase schedule — the FPGA
//     stand-in, fastest);
//   - a SystemC-like kernel (dynamic event calendar over the same
//     components);
//   - an RTL-like kernel (signal-level events with delta cycles).
//
// Basic use:
//
//	cfg, _ := nocemu.PaperConfig(nocemu.PaperOptions{PacketsPerTG: 1000})
//	p, _ := nocemu.Build(cfg)
//	p.Run(1_000_000)
//	nocemu.WriteReport(os.Stdout, p, nil)
//
// or drive the paper's full six-step flow with Run. The examples/
// directory holds runnable scenarios and cmd/nocbench regenerates every
// table and figure of the paper.
package nocemu

import (
	"io"

	"nocemu/internal/bus"
	"nocemu/internal/control"
	"nocemu/internal/dse"
	"nocemu/internal/fault"
	"nocemu/internal/flit"
	"nocemu/internal/flow"
	"nocemu/internal/jsonio"
	"nocemu/internal/link"
	"nocemu/internal/monitor"
	"nocemu/internal/platform"
	"nocemu/internal/receptor"
	"nocemu/internal/resource"
	"nocemu/internal/routing"
	"nocemu/internal/serve"
	"nocemu/internal/topology"
	"nocemu/internal/trace"
	"nocemu/internal/traffic"
)

// Core platform types.
type (
	// Config describes a complete emulation platform.
	Config = platform.Config
	// Platform is a built, runnable emulation platform.
	Platform = platform.Platform
	// TGSpec configures one traffic generator.
	TGSpec = platform.TGSpec
	// TRSpec configures one traffic receptor.
	TRSpec = platform.TRSpec
	// RouteOverride pins the route for one (switch, destination) pair.
	RouteOverride = platform.RouteOverride
	// Totals is the aggregate statistics snapshot.
	Totals = platform.Totals
	// PaperOptions parameterizes the paper's reference platform.
	PaperOptions = platform.PaperOptions
	// NetOptions parameterizes a zoo platform: any registered topology
	// generator crossed with any registered workload recipe.
	NetOptions = platform.NetOptions
	// TopologySpec is a declarative topology selector (kind + params)
	// resolved through the generator registry.
	TopologySpec = topology.Spec
	// EndpointID addresses a traffic device in the network.
	EndpointID = flit.EndpointID
	// Topology is the switch graph with endpoint attachments.
	Topology = topology.Topology
	// NodeID identifies a switch.
	NodeID = topology.NodeID
	// Trace is a recorded traffic trace.
	Trace = trace.Trace
	// Program is emulation software for the control processor.
	Program = control.Program
	// Instr is one program instruction.
	Instr = control.Instr
	// RunReport is the outcome of a six-step flow run.
	RunReport = flow.RunReport
	// FlowOptions tunes a flow run.
	FlowOptions = flow.Options
	// SynthesisReport is the FPGA area estimate.
	SynthesisReport = resource.Report
	// Addr is a register address on the internal buses.
	Addr = bus.Addr
	// FaultSpec activates one link fault for a cycle window.
	FaultSpec = fault.Spec
	// Watchdog aborts runs that stop making progress (deadlock).
	Watchdog = platform.Watchdog
)

// Link fault modes for FaultSpec.Mode.
const (
	// FaultStuck holds the link: flits are delayed, never lost.
	FaultStuck = link.FaultStuck
	// FaultCorrupt flips payload bits; receivers detect the checksum
	// mismatch.
	FaultCorrupt = link.FaultCorrupt
)

// MakeAddr assembles a bus register address.
func MakeAddr(busNo, dev, reg uint32) Addr { return bus.MakeAddr(busNo, dev, reg) }

// Traffic model configuration types.
type (
	// UniformConfig parameterizes the uniform traffic model.
	UniformConfig = traffic.UniformConfig
	// BurstConfig parameterizes the 2-state Markov burst model.
	BurstConfig = traffic.BurstConfig
	// PoissonConfig parameterizes the Poisson model.
	PoissonConfig = traffic.PoissonConfig
	// FlowConfig parameterizes flow arrivals with bounded-Pareto sizes.
	FlowConfig = traffic.FlowConfig
	// IncastConfig parameterizes synchronized many-to-one waves.
	IncastConfig = traffic.IncastConfig
	// DstConfig selects packet destinations.
	DstConfig = traffic.DstConfig
	// BurstTraceConfig shapes a synthetic burst trace.
	BurstTraceConfig = trace.BurstConfig
	// CBRTraceConfig shapes a synthetic constant-bit-rate trace.
	CBRTraceConfig = trace.CBRConfig
)

// Traffic generator model names for TGSpec.Model.
const (
	ModelUniform = platform.ModelUniform
	ModelBurst   = platform.ModelBurst
	ModelPoisson = platform.ModelPoisson
	ModelFlow    = platform.ModelFlow
	ModelIncast  = platform.ModelIncast
	ModelTrace   = platform.ModelTrace
)

// Receptor modes for TRSpec.Mode.
const (
	Stochastic  = receptor.Stochastic
	TraceDriven = receptor.TraceDriven
)

// Destination policies for DstConfig.Policy.
const (
	DstFixed      = traffic.DstFixed
	DstUniform    = traffic.DstUniform
	DstRoundRobin = traffic.DstRoundRobin
	DstHotspot    = traffic.DstHotspot
)

// Route selection policies for Config.Select.
const (
	SelectFirst        = routing.First
	SelectPacketModulo = routing.PacketModulo
	SelectRandom       = routing.Random
	SelectAdaptive     = routing.Adaptive
)

// Paper reference traffic flavors for PaperOptions.Traffic.
const (
	PaperUniform = platform.PaperUniform
	PaperBurst   = platform.PaperBurst
	PaperPoisson = platform.PaperPoisson
	PaperTrace   = platform.PaperTrace
)

// Build compiles a platform from its configuration (the paper's
// "platform compilation" step).
func Build(cfg Config) (*Platform, error) { return platform.Build(cfg) }

// PaperConfig returns the configuration of the paper's experimental
// setup: 6 switches, 4 TGs at 45% load, 4 TRs, two 90%-loaded links.
func PaperConfig(opts PaperOptions) (Config, error) { return platform.PaperConfig(opts) }

// BuildPaper builds the reference platform directly.
func BuildPaper(opts PaperOptions) (*Platform, error) { return platform.BuildPaper(opts) }

// Run executes the paper's six-step emulation flow: platform
// compilation, synthesis estimate, initialization, software
// compilation, emulation, report.
func Run(cfg Config, prog Program, opt FlowOptions) (*RunReport, error) {
	return flow.Run(cfg, prog, opt)
}

// Synthesize estimates the platform's FPGA area (Table 1 of the paper).
func Synthesize(p *Platform) (*SynthesisReport, error) {
	return resource.Estimate(p, resource.VirtexIIPro)
}

// WriteReport renders the post-emulation report (the paper's monitor
// output). syn may be nil.
func WriteReport(w io.Writer, p *Platform, syn *SynthesisReport) error {
	return monitor.WriteReport(w, p, syn)
}

// WriteHistograms renders every receptor histogram as ASCII art.
func WriteHistograms(w io.Writer, p *Platform, width int) error {
	return monitor.WriteHistograms(w, p, width)
}

// WriteJSON emits the platform snapshot as JSON.
func WriteJSON(w io.Writer, p *Platform) error { return monitor.WriteJSON(w, p) }

// Topology constructors.
var (
	// NewTopology returns an empty topology over n switches.
	NewTopology = topology.New
	// Line, Ring, Mesh, Torus, Star build standard shapes.
	Line           = topology.Line
	Ring           = topology.Ring
	Mesh           = topology.Mesh
	Torus          = topology.Torus
	Star           = topology.Star
	Tree           = topology.Tree
	TreeLeaves     = topology.TreeLeaves
	FullyConnected = topology.FullyConnected
	// PaperSix is the paper's 6-switch experimental topology.
	PaperSix = topology.PaperSix
	// ParseTopologySpec parses a "kind:p=1,q=2" spec string (the -topo
	// CLI syntax) and TopologyFromSpec resolves a spec through the
	// generator registry; TopologyKinds lists the registered kinds.
	ParseTopologySpec = topology.ParseSpec
	TopologyFromSpec  = topology.FromSpec
	TopologyKinds     = topology.Kinds
	// WorkloadKinds lists the registered workload recipes.
	WorkloadKinds = traffic.WorkloadKinds
)

// NetConfig returns the configuration of a zoo platform: one traffic
// generator and one receptor per topology terminal, with the traffic
// models derived from the named workload recipe (see TOPOLOGIES.md).
func NetConfig(o NetOptions) (Config, error) { return platform.NetConfig(o) }

// MeshConfig returns a classic mesh/torus platform configuration with
// uniform random traffic — a thin wrapper over NetConfig.
func MeshConfig(o platform.MeshOptions) (Config, error) { return platform.MeshConfig(o) }

// Design-space exploration: the fork-amortized sweep engine behind
// cmd/nocsweep (see DESIGN.md §15).
type (
	// SweepConfig describes a design-space sweep: the axes, the
	// evaluation windows, the worker pool and the search mode.
	SweepConfig = dse.Config
	// SweepAxes is the swept cross product (topologies × workloads ×
	// buffer depths × injection rates × fault campaigns).
	SweepAxes = dse.Axes
	// SweepFaultCampaign is one named fault-axis entry.
	SweepFaultCampaign = dse.FaultCampaign
	// SweepResult is a completed sweep: canonical rows, the aggregated
	// points, the Pareto front, and throughput accounting.
	SweepResult = dse.Result
	// SweepRow is one (design point, fork) evaluation.
	SweepRow = dse.Row
	// SweepFrontPoint is one aggregated design point, as ranked by the
	// Pareto front.
	SweepFrontPoint = dse.FrontPoint
)

// Search modes for SweepConfig.Search.
const (
	SweepGrid   = dse.SearchGrid
	SweepPareto = dse.SearchPareto
)

// Pareto objective names for SweepConfig.Objectives.
const (
	SweepObjLatency    = dse.ObjLatency
	SweepObjThroughput = dse.ObjThroughput
	SweepObjArea       = dse.ObjArea
)

// Sweep runs a design-space exploration and returns the canonical
// result (key-sorted rows, aggregated points, Pareto front).
func Sweep(cfg SweepConfig) (*SweepResult, error) { return dse.Sweep(cfg) }

// Sweep result helpers.
var (
	// WriteSweepRows / ReadSweepRows handle the canonical JSONL row
	// format; WriteSweepFront emits the aggregated front.
	WriteSweepRows  = dse.WriteRows
	ReadSweepRows   = dse.ReadRows
	WriteSweepFront = dse.WriteFront
	// LoadSweepJournal reads a sweep journal's rows (crash inspection).
	LoadSweepJournal = dse.LoadJournal
)

// Trace helpers.
var (
	// ReadTrace and WriteTrace handle the text trace format;
	// ReadTraceBinary/WriteTraceBinary the binary one.
	ReadTrace        = trace.Read
	WriteTrace       = trace.Write
	ReadTraceBinary  = trace.ReadBinary
	WriteTraceBinary = trace.WriteBinary
	// SynthBurstTrace and SynthCBRTrace generate synthetic application
	// traces.
	SynthBurstTrace = trace.SynthBurst
	SynthCBRTrace   = trace.SynthCBR
)

// Co-simulation service (internal/serve, cmd/nocserve): long-lived
// sessions pinning a built platform, driven over the versioned JSONL
// protocol — see DESIGN.md §16.
type (
	// ServeManager multiplexes sessions over a platform pool with
	// warm-start snapshots and park/resume.
	ServeManager = serve.Manager
	// ServeOptions tunes a ServeManager.
	ServeOptions = serve.Options
	// ServeRequest and ServeResponse are the protocol frames;
	// ServePlatformSpec pins a session's platform.
	ServeRequest      = jsonio.ServeRequest
	ServeResponse     = jsonio.ServeResponse
	ServePlatformSpec = jsonio.ServePlatform
)

// Co-simulation service entry points.
var (
	// NewServeManager builds a session manager.
	NewServeManager = serve.NewManager
	// ServeStdio serves the JSONL protocol over a reader/writer pair;
	// NewServeHTTPHandler mounts it on HTTP (POST /v1/rpc).
	ServeStdio          = serve.ServeStdio
	NewServeHTTPHandler = serve.NewHTTPHandler
	// DecodeServeRequest / EncodeServeResponse are the strict frame
	// codecs clients and tests share.
	DecodeServeRequest  = jsonio.DecodeServeRequest
	EncodeServeResponse = jsonio.EncodeServeResponse
	EncodeServeRequest  = jsonio.EncodeServeRequest
)
