package nocemu_test

import (
	"bytes"
	"strings"
	"testing"

	"nocemu"
)

func TestFacadeQuickstart(t *testing.T) {
	cfg, err := nocemu.PaperConfig(nocemu.PaperOptions{
		Traffic: nocemu.PaperUniform, PacketsPerTG: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := nocemu.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := p.Run(1_000_000); !stopped {
		t.Fatal("run did not complete")
	}
	if p.Totals().PacketsReceived != 100 {
		t.Errorf("received = %d", p.Totals().PacketsReceived)
	}
	syn, err := nocemu.Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nocemu.WriteReport(&buf, p, syn); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NoC emulation report") {
		t.Error("report malformed")
	}
	buf.Reset()
	if err := nocemu.WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "totals") {
		t.Error("JSON malformed")
	}
	buf.Reset()
	if err := nocemu.WriteHistograms(&buf, p, 30); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("histograms empty")
	}
}

func TestFacadeFullFlow(t *testing.T) {
	cfg, err := nocemu.PaperConfig(nocemu.PaperOptions{
		Traffic: nocemu.PaperTrace, PacketsPerTG: 32, FlitsPerPacket: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := nocemu.Run(cfg, nocemu.Program{}, nocemu.FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.PacketsReceived != 4*32 {
		t.Errorf("received = %d", rep.Totals.PacketsReceived)
	}
	if rep.Synthesis == nil {
		t.Error("no synthesis report")
	}
	if rep.Totals.MeanNetLatency <= 0 {
		t.Error("no latency measured")
	}
}

func TestFacadeCustomPlatform(t *testing.T) {
	topo, err := nocemu.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSource(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSink(100, 2); err != nil {
		t.Fatal(err)
	}
	p, err := nocemu.Build(nocemu.Config{
		Name:     "ring-demo",
		Topology: topo,
		TGs: []nocemu.TGSpec{{
			Endpoint: 0, Model: nocemu.ModelPoisson, Limit: 50,
			Poisson: &nocemu.PoissonConfig{
				Lambda: 6554, LenMin: 2, LenMax: 6,
				Dst: nocemu.DstConfig{Policy: nocemu.DstFixed, Dsts: []nocemu.EndpointID{100}},
			},
		}},
		TRs: []nocemu.TRSpec{{Endpoint: 100, Mode: nocemu.TraceDriven, ExpectPackets: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := p.Run(100_000); !stopped {
		t.Fatal("run did not complete")
	}
	tr, _ := p.TR(100)
	if tr.Stats().Packets != 50 {
		t.Errorf("packets = %d", tr.Stats().Packets)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr, err := nocemu.SynthBurstTrace(nocemu.BurstTraceConfig{
		Name: "t", Dst: 1, NumBursts: 2, PacketsPerBurst: 3,
		FlitsPerPacket: 2, Load: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nocemu.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := nocemu.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 6 {
		t.Errorf("records = %d", len(got.Records))
	}
}

func TestFacadeAddrAndTopologies(t *testing.T) {
	a := nocemu.MakeAddr(2, 7, 0x10)
	if a.Bus() != 2 || a.Device() != 7 || a.Reg() != 0x10 {
		t.Errorf("addr fields = %d %d %x", a.Bus(), a.Device(), a.Reg())
	}
	if _, err := nocemu.Tree(2, 2); err != nil {
		t.Errorf("tree: %v", err)
	}
	if got := nocemu.TreeLeaves(2, 2); len(got) != 4 {
		t.Errorf("leaves = %v", got)
	}
	if _, err := nocemu.FullyConnected(3); err != nil {
		t.Errorf("full: %v", err)
	}
	if _, err := nocemu.Torus(3, 3); err != nil {
		t.Errorf("torus: %v", err)
	}
	if _, err := nocemu.Star(3); err != nil {
		t.Errorf("star: %v", err)
	}
	if _, err := nocemu.Line(3); err != nil {
		t.Errorf("line: %v", err)
	}
	if _, err := nocemu.Mesh(2, 2); err != nil {
		t.Errorf("mesh: %v", err)
	}
	if _, err := nocemu.PaperSix(); err != nil {
		t.Errorf("paper-six: %v", err)
	}
	if _, err := nocemu.NewTopology("x", 2); err != nil {
		t.Errorf("new: %v", err)
	}
}

func TestFacadeFaultsAndWatchdog(t *testing.T) {
	p, err := nocemu.BuildPaper(nocemu.PaperOptions{Traffic: nocemu.PaperUniform, PacketsPerTG: 50})
	if err != nil {
		t.Fatal(err)
	}
	hotA, _, err := p.PaperHotLinks()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddFaults([]nocemu.FaultSpec{
		{Link: hotA, Mode: nocemu.FaultCorrupt, From: 10, Until: 50},
	}); err != nil {
		t.Fatal(err)
	}
	w, err := p.AttachWatchdog(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := p.Run(1_000_000); !done {
		t.Fatal("run did not finish")
	}
	if stalled, _ := w.Stalled(); stalled {
		t.Error("watchdog fired on healthy run")
	}
	if p.CorruptedFlits() == 0 {
		t.Error("no corruption detected through facade")
	}
}

func TestFacadeBinaryTraceRoundTrip(t *testing.T) {
	tr, err := nocemu.SynthCBRTrace(nocemu.CBRTraceConfig{
		Name: "c", Dst: 1, NumPackets: 4, Len: 2, Period: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nocemu.WriteTraceBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := nocemu.ReadTraceBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 4 {
		t.Errorf("records = %d", len(got.Records))
	}
}
