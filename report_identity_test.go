package nocemu_test

// The bus-sourced monitor must be indistinguishable from the old
// struct-walking one: every number in the report now travels over the
// register buses, and this test pins the refactor by comparing the new
// output byte-for-byte against a reference renderer that reads the
// simulation structs directly (the pre-refactor monitor, kept here
// verbatim).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"text/tabwriter"

	"nocemu/internal/monitor"
	"nocemu/internal/platform"
	"nocemu/internal/receptor"
)

func runPaper(t *testing.T, traf platform.PaperTraffic) *platform.Platform {
	t.Helper()
	p, err := platform.BuildPaper(platform.PaperOptions{Traffic: traf, PacketsPerTG: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, stopped := p.Run(1_000_000); !stopped {
		t.Fatal("run did not complete")
	}
	return p
}

// referenceReport is the pre-refactor monitor.WriteReport, reading the
// component structs directly instead of the buses.
func referenceReport(w io.Writer, p *platform.Platform) error {
	tot := p.Totals()
	fmt.Fprintf(w, "=== NoC emulation report: %s ===\n", p.Name())
	fmt.Fprintf(w, "cycles: %d\n", tot.Cycles)
	fmt.Fprintf(w, "packets: offered %d, sent %d, received %d\n",
		tot.PacketsOffered, tot.PacketsSent, tot.PacketsReceived)
	fmt.Fprintf(w, "flits: sent %d, received %d, routed %d\n",
		tot.FlitsSent, tot.FlitsReceived, tot.FlitsRouted)
	fmt.Fprintf(w, "congestion: rate %.4f, blocked cycles %d\n",
		tot.CongestionRate, tot.BlockedCycles)
	if tot.MeanNetLatency > 0 {
		fmt.Fprintf(w, "latency: mean %.2f cycles, receptor congestion %d cycles\n",
			tot.MeanNetLatency, tot.CongestionCycles)
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\n--- traffic generators ---")
	fmt.Fprintln(tw, "device\tmodel\toffered\tsent\tflits\tstalls\tbackpressure")
	for _, tg := range p.TGs() {
		st := tg.Stats()
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			tg.ComponentName(), tg.Generator().ModelName(),
			st.Offered, st.Injector.PacketsSent, st.Injector.FlitsSent,
			st.Injector.StallCycles, st.BackpressureCycles)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n--- traffic receptors ---")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tmode\tpackets\tflits\trun time\tlat mean\tlat max\tcongestion")
	for _, tr := range p.TRs() {
		st := tr.Stats()
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f\t%.0f\t%d\n",
			tr.ComponentName(), st.Mode, st.Packets, st.Flits, st.RunningTime,
			st.NetLatencyMean, st.NetLatencyMax, st.CongestionCycles)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	var flowRows bool
	for _, tr := range p.TRs() {
		if len(tr.PerSourceLatency()) > 0 {
			flowRows = true
			break
		}
	}
	if flowRows {
		fmt.Fprintln(w, "\n--- per-flow latency ---")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "flow\tpackets\tlat mean\tlat max")
		for _, tr := range p.TRs() {
			for _, fl := range tr.PerSourceLatency() {
				fmt.Fprintf(tw, "tg%d -> %s\t%d\t%.2f\t%.0f\n",
					fl.Src, tr.ComponentName(), fl.Packets, fl.Mean, fl.Max)
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	fmt.Fprintln(w, "\n--- switches ---")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tflits\tpackets\tblocked\tcongestion")
	for _, sw := range p.Switches() {
		st := sw.Stats()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.4f\n",
			sw.ComponentName(), st.FlitsRouted, st.PacketsRouted,
			st.BlockedCycles, st.CongestionRate())
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n--- link loads ---")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "link\tfrom\tto\tload\tflits")
	loads := p.LinkLoads()
	for i, ls := range p.Config().Topology.Links() {
		l, _ := p.Link(i)
		fmt.Fprintf(tw, "%d\tsw%d\tsw%d\t%.4f\t%d\n", i, ls.From, ls.To, loads[i], l.Flits())
	}
	return tw.Flush()
}

// referenceHistograms is the pre-refactor monitor.WriteHistograms.
func referenceHistograms(w io.Writer, p *platform.Platform, width int) {
	for _, tr := range p.TRs() {
		fmt.Fprintf(w, "--- %s ---\n", tr.ComponentName())
		if tr.Mode() == receptor.Stochastic {
			fmt.Fprintln(w, "packet sizes:")
			fmt.Fprint(w, tr.SizeHist().Render(width))
			fmt.Fprintln(w, "inter-arrival gaps:")
			fmt.Fprint(w, tr.GapHist().Render(width))
		} else {
			fmt.Fprintln(w, "latency:")
			fmt.Fprint(w, tr.LatHist().Render(width))
		}
	}
}

// The reference JSON summary mirrors the monitor's exported Summary
// shape, filled from the structs.
type refSummary struct {
	Name   string          `json:"name"`
	Totals platform.Totals `json:"totals"`
	TGs    []refTG         `json:"tgs"`
	TRs    []refTR         `json:"trs"`
	Links  []refLink       `json:"links"`
}

type refTG struct {
	Name    string `json:"name"`
	Model   string `json:"model"`
	Offered uint64 `json:"offered"`
	Sent    uint64 `json:"sent"`
	Flits   uint64 `json:"flits"`
}

type refTR struct {
	Name       string  `json:"name"`
	Mode       string  `json:"mode"`
	Packets    uint64  `json:"packets"`
	Flits      uint64  `json:"flits"`
	LatMean    float64 `json:"lat_mean"`
	LatMax     float64 `json:"lat_max"`
	Congestion uint64  `json:"congestion_cycles"`
}

type refLink struct {
	Index int     `json:"index"`
	From  int     `json:"from"`
	To    int     `json:"to"`
	Load  float64 `json:"load"`
}

func referenceJSON(w io.Writer, p *platform.Platform) error {
	s := refSummary{Name: p.Name(), Totals: p.Totals()}
	for _, tg := range p.TGs() {
		st := tg.Stats()
		s.TGs = append(s.TGs, refTG{
			Name: tg.ComponentName(), Model: tg.Generator().ModelName(),
			Offered: st.Offered, Sent: st.Injector.PacketsSent, Flits: st.Injector.FlitsSent,
		})
	}
	for _, tr := range p.TRs() {
		st := tr.Stats()
		s.TRs = append(s.TRs, refTR{
			Name: tr.ComponentName(), Mode: string(st.Mode),
			Packets: st.Packets, Flits: st.Flits,
			LatMean: st.NetLatencyMean, LatMax: st.NetLatencyMax,
			Congestion: st.CongestionCycles,
		})
	}
	loads := p.LinkLoads()
	for i, ls := range p.Config().Topology.Links() {
		s.Links = append(s.Links, refLink{
			Index: i, From: int(ls.From), To: int(ls.To), Load: loads[i],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// TestBusReportByteIdentical is the refactor's acceptance gate: on the
// paper's 6-switch platform, the report assembled purely from register
// reads must match the struct-sourced reference byte-for-byte, for both
// stochastic and trace traffic.
func TestBusReportByteIdentical(t *testing.T) {
	for _, traf := range []platform.PaperTraffic{platform.PaperUniform, platform.PaperTrace} {
		t.Run(string(traf), func(t *testing.T) {
			p := runPaper(t, traf)
			defer p.Close()

			var want, got bytes.Buffer
			if err := referenceReport(&want, p); err != nil {
				t.Fatal(err)
			}
			if err := monitor.WriteReport(&got, p, nil); err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Errorf("bus-sourced report differs from struct-sourced reference:\n--- want ---\n%s\n--- got ---\n%s",
					want.String(), got.String())
			}

			want.Reset()
			got.Reset()
			referenceHistograms(&want, p, 40)
			if err := monitor.WriteHistograms(&got, p, 40); err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Errorf("bus-sourced histograms differ from reference:\n--- want ---\n%s\n--- got ---\n%s",
					want.String(), got.String())
			}

			want.Reset()
			got.Reset()
			if err := referenceJSON(&want, p); err != nil {
				t.Fatal(err)
			}
			if err := monitor.WriteJSON(&got, p); err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Errorf("bus-sourced JSON differs from reference:\n--- want ---\n%s\n--- got ---\n%s",
					want.String(), got.String())
			}
		})
	}
}
