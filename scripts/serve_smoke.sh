#!/bin/sh
# Co-simulation service smoke: drive nocserve end to end.
#
#   1. stdio: a scripted session that injects traffic, runs cycles,
#      reads a flow answer, and parks — then a second server process
#      resumes it from the shared park directory (restart survival).
#   2. HTTP: health endpoint plus one open/xfer/close session.
#
# Checks: every response ok, the xfer answers carry nonzero latency,
# the resumed session continues at its parked cycle, and the server
# exits cleanly. The stdio transcript lands in $OUT for CI to upload.
set -eu

OUT="${OUT:-serve-smoke}"
mkdir -p "$OUT"
PARK="$OUT/park"

go build -o "$OUT/nocserve" ./cmd/nocserve

# --- stdio leg 1: open, traffic, flow answer, park -------------------
"$OUT/nocserve" -park-dir "$PARK" > "$OUT/transcript.jsonl" <<'EOF'
{"v":1,"id":1,"op":"open","sid":"smoke","platform":{"topo":"mesh:w=4,h=4","workload":"uniform","injection":0.1,"warmup":500}}
{"v":1,"id":2,"op":"inject","sid":"smoke","src":0,"dst":21,"bytes":128,"count":4}
{"v":1,"id":3,"op":"step","sid":"smoke","cycles":400}
{"v":1,"id":4,"op":"flow","sid":"smoke","src":0,"dst":21}
{"v":1,"id":5,"op":"xfer","sid":"smoke","src":3,"dst":18,"bytes":64}
{"v":1,"id":6,"op":"stats","sid":"smoke"}
{"v":1,"id":7,"op":"park","sid":"smoke"}
EOF

# --- stdio leg 2: a fresh server process resumes the parked session --
"$OUT/nocserve" -park-dir "$PARK" >> "$OUT/transcript.jsonl" <<'EOF'
{"v":1,"id":8,"op":"resume","sid":"smoke"}
{"v":1,"id":9,"op":"xfer","sid":"smoke","src":5,"dst":20,"bytes":32}
{"v":1,"id":10,"op":"close","sid":"smoke"}
EOF

echo "--- stdio transcript ---"
cat "$OUT/transcript.jsonl"

[ "$(wc -l < "$OUT/transcript.jsonl")" -eq 10 ] || { echo "FAIL: expected 10 responses"; exit 1; }
grep -q '"err"' "$OUT/transcript.jsonl" && { echo "FAIL: error response in transcript"; exit 1; }
# Both oracle calls must land with a nonzero latency answer, and the
# flow query must report nonzero mean latency over the injected packets.
[ "$(grep -c '"delivered":true' "$OUT/transcript.jsonl")" -eq 2 ] || { echo "FAIL: xfer not delivered"; exit 1; }
grep -q '"delivered":true,"latency":0[,}]' "$OUT/transcript.jsonl" && { echo "FAIL: zero xfer latency"; exit 1; }
grep -q '"flow":{"packets":4,"mean":0' "$OUT/transcript.jsonl" && { echo "FAIL: zero flow latency"; exit 1; }
grep -q '"flow":{"packets":4' "$OUT/transcript.jsonl" || { echo "FAIL: flow lost packets"; exit 1; }
# The resumed session continues at the cycle it parked at.
park_cycle=$(sed -n '7p' "$OUT/transcript.jsonl" | sed 's/.*"cycle"://;s/[,}].*//')
resume_cycle=$(sed -n '8p' "$OUT/transcript.jsonl" | sed 's/.*"cycle"://;s/[,}].*//')
[ "$park_cycle" = "$resume_cycle" ] || { echo "FAIL: resumed at $resume_cycle, parked at $park_cycle"; exit 1; }

# --- HTTP leg: healthz + one session over POST /v1/rpc ---------------
"$OUT/nocserve" -http 127.0.0.1:0 -park-dir "$PARK" 2> "$OUT/http.log" &
SRV=$!
trap 'kill $SRV 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
	ADDR=$(sed -n 's#.*listening on http://##p' "$OUT/http.log")
	[ -n "$ADDR" ] && break
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: server never announced its address"; exit 1; }

curl -fsS "http://$ADDR/healthz" | grep -q ok || { echo "FAIL: healthz"; exit 1; }
open_resp=$(curl -fsS -X POST --data '{"v":1,"id":1,"op":"open","sid":"http","platform":{"topo":"torus:w=3,h=3","warmup":100}}' "http://$ADDR/v1/rpc")
echo "$open_resp" | grep -q '"ok":true' || { echo "FAIL: http open: $open_resp"; exit 1; }
xfer_resp=$(curl -fsS -X POST --data '{"v":1,"id":2,"op":"xfer","sid":"http","src":2,"dst":13,"bytes":64}' "http://$ADDR/v1/rpc")
echo "$xfer_resp" | grep -q '"delivered":true' || { echo "FAIL: http xfer: $xfer_resp"; exit 1; }
echo "$xfer_resp" | grep -q '"latency":0[,}]' && { echo "FAIL: zero http xfer latency"; exit 1; }
curl -fsS -X POST --data '{"v":1,"id":3,"op":"close","sid":"http"}' "http://$ADDR/v1/rpc" | grep -q '"ok":true' || { echo "FAIL: http close"; exit 1; }
printf '%s\n%s\n' "$open_resp" "$xfer_resp" >> "$OUT/transcript.jsonl"

# Graceful shutdown: SIGTERM, then the process must exit on its own.
kill -TERM $SRV
wait $SRV || { echo "FAIL: server exited nonzero on SIGTERM"; exit 1; }
trap - EXIT

echo "serve smoke OK"
